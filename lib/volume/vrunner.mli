(** Volume-level experiment driver: the sharded counterpart of
    {!Runner}.

    Runs [clients] clients over one {!Shard_cluster}, each owning a
    {!Volume} and [outstanding] request fibers; optionally starts a
    {!Maintenance} scheduler for the run's duration; and measures
    aggregate throughput plus mean and p99 latency over the window.
    Tail percentiles come from the complete in-window sample, so a
    seeded run reports byte-identical numbers.

    With [check], every operation is recorded for the regular-register
    checker keyed by logical block — per (group, slot, position) — so
    the single-group checker applies to volume histories unchanged. *)

type result = {
  run : Report.run;  (** the standard per-run stats block *)
  p99_read : float;  (** seconds; 0 when no sample *)
  p99_write : float;
  write_stalls : int;
      (** operations that tripped a retry limit ({!Client.Stuck}),
          e.g. during an outage outlasting the budget; recorded as
          unfinished for the checker *)
  maintenance_passes : int;
  maintenance_gc_rounds : int;
  maintenance_errors : int;
  maintenance_recoveries : int;
  maintenance_backoffs : int;
      (** per-group backoff penalties the scheduler applied *)
  failures : Report.failures;
      (** unified failure/health accounting — same record and JSON
          schema as {!Runner.run}'s [failures] out-parameter *)
  supervisor_failovers : int;  (** group members re-homed (supervise) *)
  supervisor_repairs : int;  (** stripes rebuilt on new hosts *)
  supervisor_false_alarms : int;
      (** Down verdicts whose node was actually alive *)
  detections : (int * float) list;
      (** (pool node, simulated time) of each Down verdict the
          supervisor acted on, in order *)
  repaired_at : (int * float) list;
      (** (pool node, simulated time) when each failed-over node's
          groups finished targeted repair *)
}

val run :
  ?outstanding:int ->
  ?warmup:float ->
  ?events:(float * (Shard_cluster.t -> unit)) list ->
  ?faults:Net.faults ->
  ?maintenance:float ->
  ?supervise:bool ->
  ?gc_every:float option ->
  ?check:Checker.t ->
  sc:Shard_cluster.t ->
  clients:int ->
  duration:float ->
  workload:Generator.spec ->
  unit ->
  result
(** [maintenance], when given, is the background scheduler's ops budget
    in storage-node RPCs per simulated second (see {!Maintenance});
    omitted, no scheduler runs.  [supervise] (default false) starts a
    self-healing {!Supervisor} sharing the maintenance bucket (or a
    private one when no scheduler runs): dead pool nodes are detected,
    failed over and repaired with {e no} scripted remap events.
    [gc_every] (default [Some 0.05]) paces
    the per-client GC fibers — tids are per client, so each client
    collects its own completed writes across the groups it touched.
    [events] are scheduled actions relative to run start (outage
    injection).  Other parameters as in {!Runner.run}. *)
