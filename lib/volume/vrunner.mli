(** Volume-level experiment driver: the sharded counterpart of
    {!Runner}.

    Runs [clients] clients over one {!Shard_cluster}, each owning a
    {!Volume} and [outstanding] request fibers; optionally starts a
    {!Maintenance} scheduler for the run's duration; and measures
    aggregate throughput plus mean and p99 latency over the window.
    Tail percentiles come from the complete in-window sample, so a
    seeded run reports byte-identical numbers.

    With [check], every operation is recorded for the regular-register
    checker keyed by logical block — per (group, slot, position) — so
    the single-group checker applies to volume histories unchanged. *)

type result = {
  run : Report.run;  (** the standard per-run stats block *)
  p99_read : float;  (** seconds; 0 when no sample *)
  p99_write : float;
  write_stalls : int;
      (** operations that tripped a retry limit ({!Client.Stuck}),
          e.g. during an outage outlasting the budget; recorded as
          unfinished for the checker *)
  maintenance_passes : int;
  maintenance_gc_rounds : int;
  maintenance_errors : int;
  maintenance_recoveries : int;
  maintenance_backoffs : int;
      (** per-group backoff penalties the scheduler applied *)
  failures : Report.failures;
      (** unified failure/health accounting — same record and JSON
          schema as {!Runner.run}'s [failures] out-parameter *)
  supervisor_failovers : int;  (** group members re-homed (supervise) *)
  supervisor_repairs : int;  (** stripes rebuilt on new hosts *)
  supervisor_false_alarms : int;
      (** Down verdicts whose node was actually alive *)
  supervisor_deferrals : int;
      (** Down verdicts parked on a lazy-repair grace timer (all
          affected groups still met the repair floor) *)
  supervisor_catchups : int;
      (** deferrals resolved by the node returning within grace:
          stripes caught up in place instead of failed over *)
  detections : (int * float) list;
      (** (pool node, simulated time) of each Down verdict the
          supervisor acted on, in order *)
  repaired_at : (int * float) list;
      (** (pool node, simulated time) when each failed-over node's
          groups finished targeted repair *)
  repair_delta_hits : int;
      (** recoveries resolved by delta catch-up (missed adds shipped) *)
  repair_full_rebuilds : int;  (** recoveries that decoded [k] blocks *)
  repair_bytes_read : int;
      (** response bytes repair pulled from source members *)
  repair_bytes_shipped : int;
      (** request bytes repair pushed to rebuilt/caught-up members *)
  rebalance_moves : int;
      (** member migrations the {!Rebalancer} applied ([rebalance]) *)
  rebalance_blocks : int;  (** stripe blocks rebuilt on new hosts *)
  rebalance_skipped : int;  (** stale queued moves dropped *)
  rebalance_errors : int;
  scrub_passes : int;  (** completed background sweeps ([scrub]) *)
  scrub_report : Scrub.report;
      (** accumulated scrub outcome (zero record when no scrubber ran) *)
  scrub_errors : int;  (** stripes whose scrub repair raised *)
  corruptions_injected : int;
      (** at-rest faults injected via the shard cluster's seeded
          injector ({!Shard_cluster.corrupt_member} /
          {!Shard_cluster.rollback_member}, typically from [events]) *)
  corruptions_detected : int;
      (** distinct injected faults seen by any defense layer *)
  detection_lag : float list;
      (** seconds from injection to first detection, oldest first *)
}

val run :
  ?outstanding:int ->
  ?warmup:float ->
  ?events:(float * (Shard_cluster.t -> unit)) list ->
  ?faults:Net.faults ->
  ?maintenance:float ->
  ?supervise:bool ->
  ?rebalance:bool ->
  ?scrub:float ->
  ?scrub_rate:float ->
  ?gc_every:float option ->
  ?check:Checker.t ->
  sc:Shard_cluster.t ->
  clients:int ->
  duration:float ->
  workload:Generator.spec ->
  unit ->
  result
(** [maintenance], when given, is the background scheduler's ops budget
    in storage-node RPCs per simulated second (see {!Maintenance});
    omitted, no scheduler runs.  [supervise] (default false) starts a
    self-healing {!Supervisor} sharing the maintenance bucket (or a
    private one when no scheduler runs): dead pool nodes are detected,
    failed over and repaired with {e no} scripted remap events.
    [rebalance] (default false) additionally starts a {!Rebalancer} on
    the same bucket (non-urgent, so migrations yield to repair) with a
    50 ms replan period — node joins and drains scheduled via [events]
    are migrated live during the run.
    [scrub], when given, starts a background {!Scrubber} on the same
    bucket with that sweep period (seconds): every used stripe is
    integrity-checked and repaired each sweep, bounding the detection
    lag of at-rest faults injected via [events].  [scrub_rate] carves
    out a private token bucket at that rate (ops per simulated second)
    for the scrubber instead of sharing the maintenance bucket — the
    lever the integrity bench tiers detection lag against.
    [gc_every] (default [Some 0.05]) paces
    the per-client GC fibers — tids are per client, so each client
    collects its own completed writes across the groups it touched.
    [events] are scheduled actions relative to run start (outage
    injection).  Other parameters as in {!Runner.run}. *)

(** {1 Profile-driven, multi-tenant runs}

    Several tenants share one volume (same shard cluster, same logical
    block space), each driving its own {!Profile} — closed-loop, or
    open-loop with seeded Poisson arrivals and bounded in-flight
    admission (excess arrivals are shed and counted as drops, never
    queued).  A tenant may be metered by a per-tenant token bucket in
    blocks per simulated second: each request pays its size in tokens
    before being issued, so a greedy tenant cannot push a metered
    neighbour past its configured share. *)

type tenant = {
  tn_name : string;
  tn_profile : Profile.t;
  tn_qos_blocks_per_sec : float option;
      (** token-bucket rate; [None] = unmetered *)
  tn_seed : int;
}

type tenant_result = {
  tr_name : string;
  tr_read_reqs : int;
  tr_write_reqs : int;
  tr_read_blocks : int;
  tr_write_blocks : int;
  tr_drops : int;  (** open-loop arrivals shed at admission *)
  tr_stalls : int;  (** requests with a stuck/abandoned block op *)
  tr_mean : float;  (** seconds; 0 when no sample *)
  tr_p50 : float;
  tr_p99 : float;
  tr_mbs : float;
}

(** Per-request-size latency/throughput breakdown — the
    profile x block-size x G key the regression gate compares on. *)
type size_stats = {
  ss_reqs : int;
  ss_p50 : float;
  ss_p99 : float;
  ss_mbs : float;
}

type profile_result = {
  pf_label : string;  (** distinct tenant profile names, joined *)
  pf_duration : float;
  pf_read_reqs : int;
  pf_write_reqs : int;
  pf_read_mbs : float;
  pf_write_mbs : float;
  pf_p50_read : float;
  pf_p50_write : float;
  pf_p99_read : float;
  pf_p99_write : float;
  pf_drops : int;
  pf_stalls : int;
  pf_mean_inflight : float;
      (** mean in-flight requests seen at arrival instants, in-window *)
  pf_max_inflight : int;
  pf_sizes : (int * size_stats) list;
      (** keyed by request size in blocks, ascending *)
  pf_tenants : tenant_result list;  (** in tenant order *)
}

val run_profile :
  ?warmup:float ->
  ?events:(float * (Shard_cluster.t -> unit)) list ->
  ?blocks:int ->
  sc:Shard_cluster.t ->
  tenants:tenant list ->
  duration:float ->
  unit ->
  profile_result
(** Run every tenant's profile concurrently over one shard cluster for
    [duration] simulated seconds (after [warmup]); tenants address the
    logical blocks [0 .. blocks-1] (default 256).  Latency percentiles
    come from the complete in-window sample, so a seeded run reports
    byte-identical numbers.  The open-loop arrival schedule is drawn
    from each tenant's seed independently of admission outcomes — drops
    never perturb the schedule.
    @raise Invalid_argument if [tenants] is empty or [blocks] is smaller
    than a profile's largest request. *)
