(** Background maintenance scheduler for a sharded volume.

    One fiber round-robins over the groups; each visit runs the
    Sec 3.10 monitor pass (probe sweep, recovery of flagged stripes —
    Fig 6) and one two-phase GC round (Fig 7), priced against a
    token-bucket ops budget refilled at [ops_per_sec] — bounding how
    much background repair can steal from foreground traffic.  A visit
    that trips a retry limit (a pool node down longer than the recovery
    budget) is absorbed, counted in {!errors}, and the group is
    revisited on a later round.

    All pacing derives from the simulated clock, so a seeded run is
    deterministic.  The fiber exits at [until] or on {!stop} — without
    one of these a discrete-event simulation would never terminate. *)

type t

val start :
  Shard_cluster.t ->
  id:int ->
  ?ops_per_sec:float ->
  ?burst:float ->
  until:float ->
  unit ->
  t
(** Spawn the scheduler as client [id] (use an id no foreground client
    shares).  [ops_per_sec] (default 2000) is the budget in storage-node
    RPCs per simulated second; a group visit costs [n + 1] tokens.
    [burst] is the bucket capacity (default [2 * (n + 1)]). *)

val stop : t -> unit
val passes : t -> int
(** Completed group visits. *)

val gc_rounds : t -> int
val errors : t -> int
(** Visits abandoned on a tripped retry limit (retried later). *)

val recoveries : t -> int
(** Recoveries the maintenance clients completed across all groups. *)
