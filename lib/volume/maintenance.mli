(** Background maintenance scheduler for a sharded volume.

    One fiber round-robins over the groups; each visit runs the
    Sec 3.10 monitor pass (probe sweep, recovery of flagged stripes —
    Fig 6) and one two-phase GC round (Fig 7), priced against a
    token-bucket ops {!Budget} refilled at [ops_per_sec] — bounding how
    much background repair can steal from foreground traffic.  The
    bucket can be shared with the self-healing {!Supervisor}, whose
    urgent repairs preempt routine sweeps but still pay into the same
    budget.

    A visit that trips a retry limit (a pool node down longer than the
    recovery budget) is absorbed, counted in {!errors}, and the group
    put on a capped exponential backoff: skipped by the round-robin
    until its penalty (doubling per consecutive failure, capped at
    [backoff_max]) expires, so a long outage cannot starve healthy
    groups' sweeps.

    All pacing derives from the simulated clock, so a seeded run is
    deterministic.  The fiber exits at [until] or on {!stop} — without
    one of these a discrete-event simulation would never terminate. *)

type t

val start :
  Shard_cluster.t ->
  id:int ->
  ?ops_per_sec:float ->
  ?burst:float ->
  ?budget:Budget.t ->
  ?backoff:float ->
  ?backoff_max:float ->
  until:float ->
  unit ->
  t
(** Spawn the scheduler as client [id] (use an id no foreground client
    shares).  [ops_per_sec] (default 2000) is the budget in storage-node
    RPCs per simulated second; a group visit costs [n + 1] tokens.
    [burst] is the bucket capacity (default [2 * (n + 1)]).  Passing
    [budget] overrides both with an externally shared bucket.
    [backoff] (default 0.02 s) is the first per-group penalty after a
    failed visit; it doubles per consecutive failure up to [backoff_max]
    (default 0.32 s).  @raise Invalid_argument unless
    [0 < backoff <= backoff_max]. *)

val stop : t -> unit
val passes : t -> int
(** Completed group visits. *)

val gc_rounds : t -> int
val errors : t -> int
(** Visits abandoned on a tripped retry limit (retried after backoff). *)

val backoffs : t -> int
(** Backoff penalties applied (one per failed visit). *)

val deferred : t -> int
(** Scheduler rounds where every group was inside its backoff window
    (the fiber slept instead of spending budget on doomed visits). *)

val budget : t -> Budget.t
(** The ops bucket — hand it to {!Supervisor.start} to price urgent
    repair against the same budget. *)

val recoveries : t -> int
(** Recoveries the maintenance clients completed across all groups. *)

(**/**)

(* Test hooks: the backoff policy, unit-testable without a cluster. *)
val record_failure : t -> int -> unit
val record_success : t -> int -> unit
val eligible_at : t -> int -> float
