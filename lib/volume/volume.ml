(* Sharded volume manager: one large logical block address space over G
   independent AJX stripe groups.

   Logical block [l] routes through the placement to
   (group [l mod G], group-local block [l / G]); within the group the
   usual rotating layout applies ([slot = b / k], data position
   [b mod k]).  Each manager instance holds one protocol {!Client} per
   group (all sharing the owning client's network node), and batch
   operations fan out across groups on parallel fibers — independent
   groups never serialize behind each other, which is where the
   aggregate-bandwidth scaling of the volume comes from. *)

type t = {
  sc : Shard_cluster.t;
  id : int;
  clients : Client.t array; (* one per group *)
}

let create sc ~id =
  {
    sc;
    id;
    clients =
      Array.init (Shard_cluster.groups sc) (fun g ->
          Shard_cluster.make_group_client sc ~id ~group:g);
  }

let shard_cluster t = t.sc
let client_id t = t.id
let group_client t g = t.clients.(g)
let block_size t = (Shard_cluster.config t.sc).Config.block_size
let groups t = Array.length t.clients

(* Logical block -> (group, stripe slot, data position). *)
let route t l =
  let g, b = Placement.locate (Shard_cluster.placement t.sc) l in
  let slot, i = Layout.stripe_of_block (Shard_cluster.group_layout t.sc g) b in
  (g, slot, i)

let read t l =
  let g, slot, i = route t l in
  Client.read t.clients.(g) ~slot ~i

let write t l v =
  if Bytes.length v <> block_size t then
    invalid_arg "Volume.write: value must be exactly one block";
  let g, slot, i = route t l in
  Client.write t.clients.(g) ~slot ~i v

let read_degraded t l =
  let g, slot, i = route t l in
  Client.read_degraded t.clients.(g) ~slot ~i

(* Batches pipeline with no cross-item ordering: every operation runs in
   its own fiber, so ops on distinct groups proceed concurrently and ops
   within one group overlap exactly as the group client allows. *)
let read_batch t blocks =
  Fiber.fork_all (List.map (fun l () -> read t l) blocks)

let write_batch t writes =
  if List.exists (fun (_, v) -> Bytes.length v <> block_size t) writes then
    invalid_arg "Volume.write_batch: values must be exactly one block";
  ignore (Fiber.fork_all (List.map (fun (l, v) () -> write t l v) writes))

let read_range t ~from_block ~count =
  let parts = read_batch t (List.init count (fun i -> from_block + i)) in
  Bytes.concat Bytes.empty parts

let write_range t ~from_block data =
  let bs = block_size t in
  if Bytes.length data mod bs <> 0 then
    invalid_arg "Volume.write_range: data must be a multiple of block size";
  write_batch t
    (List.init
       (Bytes.length data / bs)
       (fun i -> (from_block + i, Bytes.sub data (i * bs) bs)))

let monitor_once t ~group =
  Client.monitor_once t.clients.(group)
    ~slots:(Shard_cluster.used_slots t.sc ~group)

let collect_garbage t ~group = Client.collect_garbage t.clients.(group)
