(** Sharded volume manager: one flat logical block address space over
    [G] independent AJX stripe groups (one {!Client} per group).

    Logical block [l] lives in group [l mod G] at group-local block
    [l / G]; within the group the usual rotating {!Layout} applies.
    Batch operations fan out across groups on parallel fibers, so
    independent groups never serialize behind each other. *)

type t

val create : Shard_cluster.t -> id:int -> t
(** One protocol client per group, all sharing client [id]'s network
    node. *)

val shard_cluster : t -> Shard_cluster.t
val client_id : t -> int
val groups : t -> int
val block_size : t -> int

val group_client : t -> int -> Client.t
(** The per-group protocol client (monitoring, recovery, GC). *)

val route : t -> int -> int * int * int
(** [route t l] is [(group, stripe slot, data position)] for logical
    block [l]. *)

val read : t -> int -> bytes
(** READ logical block [l] (zeros if never written). *)

val write : t -> int -> bytes -> unit
(** Durably store one block.
    @raise Invalid_argument unless exactly [block_size] bytes. *)

val read_degraded : t -> int -> bytes option
(** Decode the block from any [k] consistent members of its group
    without waiting for recovery; [None] if no consistent set exists. *)

val read_batch : t -> int list -> bytes list
(** Pipelined reads; results in request order. *)

val write_batch : t -> (int * bytes) list -> unit
(** Pipelined writes.  Blocks in one batch should be distinct; writes
    to the same block race (regular-register semantics). *)

val read_range : t -> from_block:int -> count:int -> bytes
val write_range : t -> from_block:int -> bytes -> unit

val monitor_once : t -> group:int -> unit
(** One monitor pass (Sec 3.10) over the group's used stripes, running
    recovery on anything flagged. *)

val collect_garbage : t -> group:int -> unit
(** One two-phase GC round for the group client. *)
