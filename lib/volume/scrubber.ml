(* Background scrubber: a budgeted sweep over every used stripe of
   every group, running {!Scrub.scrub_slot} — the metadata self-check
   probe, the cross-member decode check, and ordinary recovery for
   anything flagged.  This is the proactive half of the integrity
   story: verified reads catch faults on blocks clients actually touch;
   the scrubber bounds the detection lag of faults on {e cold} data by
   its sweep period.

   Pacing: each stripe costs [2n + 1] tokens (a [get_meta] plus a
   [get_state] per member, plus slack for the occasional repair) from a
   Budget shared with maintenance/supervisor/rebalancer, so scrubbing
   can never starve urgent repair — urgent takers preempt non-urgent
   ones at the bucket.  A sweep that finishes early idles out the rest
   of its [period], so an over-provisioned budget does not turn into a
   hot loop.

   Coordination: groups under supervisor repair or rebalancer migration
   (per-group claims) are skipped for the sweep — their stripes are
   being rebuilt anyway — and picked up again on the next pass. *)

type t = {
  sc : Shard_cluster.t;
  volume : Volume.t;
  budget : Budget.t;
  slot_cost : float;
  period : float;
  poll : float;
  until : float;
  mutable stopped : bool;
  mutable passes : int;
  mutable skipped_claims : int;
  mutable errors : int;
  mutable report : Scrub.report;
}

let passes t = t.passes
let skipped_claims t = t.skipped_claims
let errors t = t.errors
let report t = t.report
let stop t = t.stopped <- true

let scrub_group t g =
  if not (Shard_cluster.try_claim_group t.sc g) then
    t.skipped_claims <- t.skipped_claims + 1
  else
    Fun.protect
      ~finally:(fun () -> Shard_cluster.release_group t.sc g)
      (fun () ->
        let client = Volume.group_client t.volume g in
        List.iter
          (fun slot ->
            if (not t.stopped) && Shard_cluster.now t.sc < t.until then begin
              Budget.take t.budget t.slot_cost;
              match Scrub.scrub_slot client ~slot with
              | r -> t.report <- Scrub.merge t.report r
              | exception (Client.Stuck _ | Client.Data_loss _) ->
                t.errors <- t.errors + 1
            end)
          (Shard_cluster.used_slots t.sc ~group:g))

let run t =
  while (not t.stopped) && Shard_cluster.now t.sc < t.until do
    let started = Shard_cluster.now t.sc in
    for g = 0 to Shard_cluster.groups t.sc - 1 do
      if (not t.stopped) && Shard_cluster.now t.sc < t.until then
        scrub_group t g
    done;
    t.passes <- t.passes + 1;
    let elapsed = Shard_cluster.now t.sc -. started in
    Fiber.sleep (if elapsed < t.period then t.period -. elapsed else t.poll)
  done

let start sc ~id ?budget ?(period = 0.05) ?(poll = 0.5e-3) ~until () =
  if period <= 0. then invalid_arg "Scrubber.start: need period > 0";
  if poll <= 0. then invalid_arg "Scrubber.start: need poll > 0";
  let n = (Shard_cluster.config sc).Config.n in
  let slot_cost = float_of_int ((2 * n) + 1) in
  let budget =
    match budget with
    | Some b -> b
    | None ->
      Budget.create ~rate:2000. ~cap:(2. *. slot_cost)
        ~now:(fun () -> Shard_cluster.now sc)
  in
  let t =
    {
      sc;
      volume = Volume.create sc ~id;
      budget;
      slot_cost;
      period;
      poll;
      until;
      stopped = false;
      passes = 0;
      skipped_claims = 0;
      errors = 0;
      report = Scrub.empty;
    }
  in
  Shard_cluster.spawn sc (fun () -> run t);
  t
