(* Simulated substrate for a sharded volume: one discrete-event network
   hosting a pool of [m] storage nodes, over which [G] independent AJX
   stripe groups are placed (see Placement).

   Each group gets its own directory, layout and per-(group, member)
   storage-node state, but members of co-located groups bind to the
   {e same} pool network node — so groups sharing a pool node contend
   for its NIC and CPU, which is exactly what bends the volume's
   scaling curve once the pool saturates.

   Failure model: pool nodes fail-stop ({!crash_node}) and restart
   ({!restart_node}).  A restart installs a fresh network node under the
   old site label and remaps every group member hosted there to a new
   generation (INIT slots, garbage contents); the maintenance layer's
   monitor then repairs the affected stripes (Sec 3.10 + Fig 6).  While
   a pool node is down, transports report [`Node_down] — the reliable
   detection recovery needs to skip the member — except when the
   directory has already moved on (a remap raced the call), in which
   case the call is retried against the fresh entry. *)

type group = {
  g_layout : Layout.t;
  g_dir : Directory.t;
  g_metrics : Metrics.t;
  g_touched : (int, unit) Hashtbl.t; (* stripes this group has served *)
}

type pool_node = {
  p_site : string;
  mutable p_net : Net.node;
  mutable p_restarts : int;
}

(* Ledger of injected at-rest faults, keyed by (group, member index,
   slot).  A fault is "detected" the first time any defense layer sees
   it — the node's own self-check (observed via [on_integrity_fail]) or
   the client-side verified-read / cross-check (observed via
   [Trace.Integrity_detected] in the trace sink) — at which point its
   detection lag is sampled and the entry retired.  Shared with the
   node factories, so it is built before [t]. *)
type integrity_log = {
  inj_src : Injector.t;
  inj_times : (int * int * int, float) Hashtbl.t;
  mutable inj_count : int;
  mutable det_count : int;
  mutable det_lag : float list; (* newest first *)
}

type t = {
  engine : Engine.t;
  net : Net.t;
  stats : Stats.t;
  cfg : Config.t;
  code : Rs_code.t;
  placement : Placement.t;
  pool : pool_node array ref; (* grows on add_node; read through !() *)
  groups : group array;
  client_nodes : (int, Net.node) Hashtbl.t;
  pending_moves : Placement.move Queue.t; (* rebalancer's work queue *)
  queued_slots : (int * int, unit) Hashtbl.t; (* (group, index) queued *)
  claims : (int, unit) Hashtbl.t; (* groups under repair/rebalance *)
  ilog : integrity_log;
  planners : (int * int, Repair_planner.t) Hashtbl.t; (* (id, group) *)
  mutable note_hooks : (float -> string -> unit) list;
  mutable pool_health_hooks :
    (now:float -> node:int -> state:Health.state -> unit) list;
}

let pool_site i = Printf.sprintf "p%d" i
let client_site id = Printf.sprintf "vc%d" id

(* First sighting of an injected fault by any defense layer: sample its
   detection lag and retire the ledger entry.  Re-detections of the same
   fault (a corrupt slot served twice before repair) only bump the raw
   stats counter. *)
let log_detection ~now ~stats ilog ~group ~index ~slot kind =
  Stats.incr stats kind;
  match Hashtbl.find_opt ilog.inj_times (group, index, slot) with
  | Some t0 ->
    Hashtbl.remove ilog.inj_times (group, index, slot);
    ilog.det_count <- ilog.det_count + 1;
    ilog.det_lag <- (now -. t0) :: ilog.det_lag
  | None -> ()

let create ?(net_config = Net.default_config) ?(rotate = true) ?(seed = 0xEC5)
    ?faults ~placement cfg =
  if Placement.nodes_per_group placement <> cfg.Config.n then
    invalid_arg "Shard_cluster.create: placement nodes_per_group <> config n";
  let engine = Engine.create ~seed () in
  let stats = Stats.create () in
  let net = Net.create engine ~config:net_config stats in
  (match faults with Some f -> Net.set_faults net f | None -> ());
  let code =
    Rs_code.create ~field:cfg.Config.field ~k:cfg.Config.k ~n:cfg.Config.n ()
  in
  let pool =
    ref
      (Array.init (Placement.pool placement) (fun i ->
           let node = Net.add_node net ~name:(pool_site i) in
           Net.set_site node (pool_site i);
           { p_site = pool_site i; p_net = node; p_restarts = 0 }))
  in
  let ilog =
    {
      inj_src = Injector.create ~seed:(seed lxor 0x1C4B5);
      inj_times = Hashtbl.create 16;
      inj_count = 0;
      det_count = 0;
      det_lag = [];
    }
  in
  let mk_group g =
    let layout = Layout.create ~rotate ~k:cfg.Config.k ~n:cfg.Config.n () in
    let factory ~index ~generation =
      let p = Placement.member placement ~group:g ~index in
      {
        Directory.net_node = !pool.(p).p_net;
        store =
          Storage_node.create
            ~alpha_for:(Layout.alpha_oracle layout code ~node:index)
            ~h:(Config.h cfg)
            ~on_integrity_fail:(fun ~slot status ->
              log_detection ~now:(Engine.now engine) ~stats ilog ~group:g
                ~index ~slot
                (match status with
                | Checksum.Stale_epoch -> "integrity.node_stale"
                | _ -> "integrity.node_detected"))
            ~now:(fun () -> Engine.now engine)
            ~delta_log_cap:cfg.Config.repair.Config.delta_log_cap
            ~tombs_cap:cfg.Config.repair.Config.tombs_cap
            ~block_size:cfg.Config.block_size
            ~init:(if generation = 0 then `Zeroed else `Garbage)
            ();
        generation;
      }
    in
    {
      g_layout = layout;
      g_dir = Directory.create ~n:cfg.Config.n factory;
      g_metrics = Metrics.create ();
      g_touched = Hashtbl.create 32;
    }
  in
  {
    engine;
    net;
    stats;
    cfg;
    code;
    placement;
    pool;
    groups = Array.init (Placement.groups placement) mk_group;
    client_nodes = Hashtbl.create 8;
    pending_moves = Queue.create ();
    queued_slots = Hashtbl.create 16;
    claims = Hashtbl.create 8;
    ilog;
    planners = Hashtbl.create 8;
    note_hooks = [];
    pool_health_hooks = [];
  }

let engine t = t.engine
let net t = t.net
let stats t = t.stats
let config t = t.cfg
let code t = t.code
let placement t = t.placement
let now t = Engine.now t.engine
let groups t = Array.length t.groups

let group_layout t g = t.groups.(g).g_layout
let group_directory t g = t.groups.(g).g_dir
let group_metrics t g = t.groups.(g).g_metrics

let metrics t =
  let merged = Metrics.create () in
  Array.iter (fun g -> Metrics.merge_into ~dst:merged g.g_metrics) t.groups;
  merged

let touch t ~group ~slot = Hashtbl.replace t.groups.(group).g_touched slot ()

let used_slots t ~group =
  Hashtbl.fold (fun slot () acc -> slot :: acc) t.groups.(group).g_touched []
  |> List.sort compare

let pool_size t = Array.length !(t.pool)
let topology t = Placement.topology t.placement
let node_alive t p = Net.is_alive !(t.pool).(p).p_net

let crash_node t p =
  if p < 0 || p >= pool_size t then
    invalid_arg "Shard_cluster.crash_node: pool index out of range";
  Net.crash !(t.pool).(p).p_net

(* Restart installs a fresh network node under the same site (so
   per-link fault policies and partitions stay in force) and remaps
   every group member hosted on the pool node: next generation, INIT
   slots.  The member re-enters service through recovery (Sec 3.10). *)
let restart_node t p =
  if p < 0 || p >= pool_size t then
    invalid_arg "Shard_cluster.restart_node: pool index out of range";
  let pn = !(t.pool).(p) in
  if not (Net.is_alive pn.p_net) then begin
    pn.p_restarts <- pn.p_restarts + 1;
    let node =
      Net.add_node t.net ~name:(Printf.sprintf "%s.r%d" pn.p_site pn.p_restarts)
    in
    Net.set_site node pn.p_site;
    pn.p_net <- node;
    List.iter
      (fun g ->
        let members = Placement.group_nodes t.placement g in
        Array.iteri
          (fun index q ->
            if q = p then ignore (Directory.remap t.groups.(g).g_dir index))
          members)
      (Placement.groups_on t.placement p)
  end

(* Crash-recovery rejoin with state intact: the pool node comes back
   holding the same disks (same Storage_node stores), only its network
   identity changed.  Each hosted member is re-bound in place
   (generation bump, no remap), and its store is swept by
   [quarantine_inflight]: slots caught mid-write or mid-reconstruction
   are demoted to INIT (a recovery that ran while the node was away may
   have rolled their in-flight write back — undetectable locally), while
   sealed quiet slots keep their blocks and rejoin as cheap epoch-stale
   delta-repair targets instead of full rebuilds. *)
let revive_node t p =
  if p < 0 || p >= pool_size t then
    invalid_arg "Shard_cluster.revive_node: pool index out of range";
  let pn = !(t.pool).(p) in
  if not (Net.is_alive pn.p_net) then begin
    pn.p_restarts <- pn.p_restarts + 1;
    let node =
      Net.add_node t.net ~name:(Printf.sprintf "%s.r%d" pn.p_site pn.p_restarts)
    in
    Net.set_site node pn.p_site;
    pn.p_net <- node;
    List.iter
      (fun g ->
        let members = Placement.group_nodes t.placement g in
        Array.iteri
          (fun index q ->
            if q = p then begin
              let entry = Directory.rebind t.groups.(g).g_dir index node in
              let quarantined =
                Storage_node.quarantine_inflight entry.Directory.store
              in
              for _ = 1 to quarantined do
                Stats.incr t.stats "pool.slots_quarantined"
              done
            end)
          members)
      (Placement.groups_on t.placement p);
    Stats.incr t.stats "pool.revives"
  end

let schedule_outage t ~at ~node ~down_for =
  Engine.schedule t.engine ~at (fun () -> crash_node t node);
  Engine.schedule t.engine ~at:(at +. down_for) (fun () ->
      restart_node t node)

(* A blip: the node goes away and comes back {e with its state} — the
   transient-outage case delta repair and lazy repair floors target. *)
let schedule_blip t ~at ~node ~down_for =
  Engine.schedule t.engine ~at (fun () -> crash_node t node);
  Engine.schedule t.engine ~at:(at +. down_for) (fun () ->
      revive_node t node)

(* Supervisor-driven failover (Sec 3.5 remap, but event-driven): every
   member hosted on the dead pool node is re-homed to an alive,
   least-loaded pool node not already serving that group, and its
   directory entry remapped to a fresh generation (INIT slots on the new
   host).  Destinations respecting the placement's failure-domain
   constraint are preferred; if the pool is too degraded to offer one,
   any alive non-member node serves (restoring redundancy beats keeping
   domains distinct).  Draining nodes (weight 0) are never chosen.
   Returns the affected groups, for targeted repair.  Members with no
   legal destination are left in place — calls to them keep reporting
   [`Node_down]. *)
let fail_over ?only t ~node =
  if node < 0 || node >= pool_size t then
    invalid_arg "Shard_cluster.fail_over: pool index out of range";
  if node_alive t node then
    invalid_arg "Shard_cluster.fail_over: node is alive";
  let topo = topology t in
  let eligible g =
    match only with None -> true | Some gs -> List.mem g gs
  in
  let moved = ref [] in
  List.iter
    (fun g ->
      if eligible g then
      let grp = t.groups.(g) in
      let members = Placement.group_nodes t.placement g in
      let moved_any = ref false in
      Array.iteri
        (fun index q ->
          if q = node then begin
            let loads = Placement.loads t.placement in
            let pick respect_domains =
              let best = ref None in
              Array.iteri
                (fun cand load ->
                  if
                    cand <> node && node_alive t cand
                    && Topology.weight topo cand > 0.
                    && not
                         (Array.exists
                            (fun m -> m = cand)
                            (Placement.group_nodes t.placement g))
                    && not
                         (respect_domains
                         && Placement.violates t.placement ~group:g ~index
                              ~node:cand)
                  then
                    match !best with
                    | Some (_, bl) when bl <= load -> ()
                    | _ -> best := Some (cand, load))
                loads;
              !best
            in
            match (match pick true with Some c -> Some c | None -> pick false)
            with
            | None -> ()
            | Some (cand, _) ->
              Placement.reassign t.placement ~group:g ~index ~node:cand;
              ignore (Directory.remap grp.g_dir index);
              moved_any := true
          end)
        members;
      if !moved_any then moved := g :: !moved)
    (Placement.groups_on t.placement node);
  List.rev !moved

(* ------------------------------------------------------------------ *)
(* Elastic membership.  [add_node]/[drain_node] change the topology,
   re-run the placement selector and enqueue the resulting diff as
   pending moves; the {!Rebalancer} drains the queue and performs the
   actual live migration (reassign + remap + Fig 6 rebuild).  Nothing
   migrates synchronously — capacity changes are cheap metadata edits,
   the data follows under the background budget. *)

(* Queue the placement diff, deduplicating on (group, index): a member
   already scheduled to move keeps its first destination until the
   rebalancer picks it up (it re-validates against the live placement
   anyway). *)
let plan_rebalance t =
  let fresh =
    List.filter
      (fun mv ->
        not (Hashtbl.mem t.queued_slots (mv.Placement.mv_group, mv.mv_index)))
      (Placement.plan t.placement)
  in
  List.iter
    (fun mv ->
      Hashtbl.replace t.queued_slots (mv.Placement.mv_group, mv.mv_index) ();
      Queue.push mv t.pending_moves)
    fresh;
  fresh

let add_node ?weight t ~host ~rack ~zone =
  let topo = topology t in
  let id = Topology.add_node ?weight topo ~host ~rack ~zone in
  let node = Net.add_node t.net ~name:(pool_site id) in
  Net.set_site node (pool_site id);
  let pn = { p_site = pool_site id; p_net = node; p_restarts = 0 } in
  t.pool := Array.append !(t.pool) [| pn |];
  ignore (plan_rebalance t);
  id

let drain_node t p =
  if p < 0 || p >= pool_size t then
    invalid_arg "Shard_cluster.drain_node: pool index out of range";
  Topology.set_weight (topology t) p 0.;
  plan_rebalance t

let take_move t =
  match Queue.take_opt t.pending_moves with
  | None -> None
  | Some mv ->
    Hashtbl.remove t.queued_slots (mv.Placement.mv_group, mv.mv_index);
    Some mv

let requeue_move t mv =
  if not (Hashtbl.mem t.queued_slots (mv.Placement.mv_group, mv.mv_index))
  then begin
    Hashtbl.replace t.queued_slots (mv.Placement.mv_group, mv.mv_index) ();
    Queue.push mv t.pending_moves
  end

let queued_moves t = Queue.length t.pending_moves

(* Per-group exclusion between the supervisor's targeted repair and the
   rebalancer's migrations: whoever claims the group first finishes its
   pass before the other touches any of the group's stripes.  Claims
   are advisory fiber-level locks — holders must release in a
   [Fun.protect] finally. *)
let try_claim_group t g =
  if g < 0 || g >= Array.length t.groups then
    invalid_arg "Shard_cluster.try_claim_group: group out of range";
  if Hashtbl.mem t.claims g then false
  else begin
    Hashtbl.replace t.claims g ();
    true
  end

let release_group t g =
  if not (Hashtbl.mem t.claims g) then
    invalid_arg "Shard_cluster.release_group: group not claimed";
  Hashtbl.remove t.claims g

let set_faults t f = Net.set_faults t.net f

(* ------------------------------------------------------------------ *)
(* At-rest integrity faults, addressed by (group, member index, slot).
   Injections are ledgered so detection lag can be reported; see
   [integrity_log]. *)

let corrupt_member t ~group ~index ~slot =
  let entry = Directory.lookup t.groups.(group).g_dir index in
  let xors = Injector.flips t.ilog.inj_src ~len:t.cfg.Config.block_size in
  let hit = Storage_node.corrupt_block entry.Directory.store ~slot ~xors in
  if hit then begin
    t.ilog.inj_count <- t.ilog.inj_count + 1;
    Hashtbl.replace t.ilog.inj_times (group, index, slot) (Engine.now t.engine);
    Stats.incr t.stats "faults.corrupt_injected"
  end;
  hit

type member_snapshot = Storage_node.snapshot

let snapshot_member t ~group ~index ~slot =
  let entry = Directory.lookup t.groups.(group).g_dir index in
  Storage_node.snapshot_slot entry.Directory.store ~slot

let rollback_member t ~group ~index ~slot snap =
  let entry = Directory.lookup t.groups.(group).g_dir index in
  let hit = Storage_node.rollback_slot entry.Directory.store ~slot snap in
  if hit then begin
    t.ilog.inj_count <- t.ilog.inj_count + 1;
    Hashtbl.replace t.ilog.inj_times (group, index, slot) (Engine.now t.engine);
    Stats.incr t.stats "faults.rollback_injected"
  end;
  hit

let integrity_injected t = t.ilog.inj_count
let integrity_detected t = t.ilog.det_count
let integrity_outstanding t = Hashtbl.length t.ilog.inj_times
let integrity_lag t = List.rev t.ilog.det_lag

let set_pool_link_faults t ~client ~node f =
  Net.set_link_faults t.net ~src:(client_site client) ~dst:(pool_site node) f;
  Net.set_link_faults t.net ~src:(pool_site node) ~dst:(client_site client) f

let note t event =
  let key =
    if String.starts_with ~prefix:"rpc." event then event else "note." ^ event
  in
  Stats.incr t.stats key;
  List.iter (fun hook -> hook (Engine.now t.engine) event) t.note_hooks

let on_note t hook = t.note_hooks <- hook :: t.note_hooks

let trace_sink t ~group:g ctx event =
  Metrics.sink t.groups.(g).g_metrics ctx event;
  (match event with
  | Trace.Integrity_detected { pos; fault } when ctx.Trace.slot >= 0 ->
    (* Client-side detection (verified read or cross-check): translate
       stripe position to the group member hosting it and mark the
       ledger, same as a node-side self-check hit. *)
    let index =
      Layout.node_of t.groups.(g).g_layout ~stripe:ctx.Trace.slot ~pos
    in
    log_detection ~now:(Engine.now t.engine) ~stats:t.stats t.ilog ~group:g
      ~index ~slot:ctx.Trace.slot
      (match fault with
      | `Stale -> "integrity.client_stale"
      | `Checksum -> "integrity.client_detected")
  | _ -> ());
  match Trace.legacy_note ctx event with Some s -> note t s | None -> ()

let client_node t ~id =
  match Hashtbl.find_opt t.client_nodes id with
  | Some n -> n
  | None ->
    let n = Net.add_node t.net ~name:(client_site id) in
    Hashtbl.replace t.client_nodes id n;
    n

(* One slot-addressed RPC to member [lnode] of group [g].  [`Node_down]
   is returned only while the directory still maps the dead node — the
   reliable detection recovery relies on to skip the member.  If a
   restart has already remapped the entry out from under us, the call is
   retried against the fresh instance instead (the caller should never
   see a stale entry's failure). *)
let rec rpc_to_member ?deadline t ~g ~caller ~src ~lnode ~slot req ~attempts =
  let grp = t.groups.(g) in
  let entry = Directory.lookup grp.g_dir lnode in
  let dst = entry.Directory.net_node in
  let serve () =
    Net.cpu_use dst (Cluster.serve_cost t.cfg req);
    let resp = Storage_node.handle entry.Directory.store ~caller ~slot req in
    (resp, Proto.response_bytes resp)
  in
  let result =
    Net.rpc ?timeout:deadline t.net ~src ~dst
      ~tag:(Proto.request_tag req)
      ~req_bytes:(Proto.request_bytes req) ~serve
  in
  match result with
  | Ok resp -> Ok resp
  | Error Net.Timeout -> Error `Timeout
  | Error Net.Node_down ->
    let current = Directory.lookup grp.g_dir lnode in
    if
      attempts < 3
      && current.Directory.generation <> entry.Directory.generation
    then
      rpc_to_member ?deadline t ~g ~caller ~src ~lnode ~slot req
        ~attempts:(attempts + 1)
    else Error `Node_down

let transport t ~id ~group:g : Transport.t =
  let src = client_node t ~id in
  let grp = t.groups.(g) in
  let call ?deadline ~slot ~pos req =
    touch t ~group:g ~slot;
    let lnode = Layout.node_of grp.g_layout ~stripe:slot ~pos in
    rpc_to_member ?deadline t ~g ~caller:id ~src ~lnode ~slot req ~attempts:0
  in
  let call_node ?deadline ~node req =
    rpc_to_member ?deadline t ~g ~caller:id ~src ~lnode:node ~slot:0 req
      ~attempts:0
  in
  let broadcast ~slot ~poss req =
    let lnodes =
      List.map
        (fun pos -> (pos, Layout.node_of grp.g_layout ~stripe:slot ~pos))
        poss
    in
    let entries =
      List.map (fun (pos, ln) -> (pos, Directory.lookup grp.g_dir ln)) lnodes
    in
    let dsts = List.map (fun (_, e) -> e.Directory.net_node) entries in
    let serve dst_node =
      let _, entry =
        List.find (fun (_, e) -> e.Directory.net_node == dst_node) entries
      in
      Net.cpu_use dst_node (Cluster.serve_cost t.cfg req);
      let resp =
        Storage_node.handle entry.Directory.store ~caller:id ~slot req
      in
      (resp, Proto.response_bytes resp)
    in
    let results =
      Net.broadcast t.net ~src ~dsts
        ~tag:(Proto.request_tag req)
        ~req_bytes:(Proto.request_bytes req) ~serve
    in
    List.map2
      (fun (pos, _) (_, r) ->
        ( pos,
          match r with
          | Ok resp -> Ok resp
          | Error Net.Node_down -> Error `Node_down
          | Error Net.Timeout -> Error `Timeout ))
      lnodes results
  in
  let pfor thunks = ignore (Fiber.fork_all thunks) in
  (module struct
    let client_id = id
    let call = call
    let call_node = call_node
    let broadcast = Some broadcast
    let pfor = pfor
    let sleep = Fiber.sleep
    let now () = Engine.now t.engine
    let compute seconds = Net.cpu_use src seconds
  end : Transport.S)

let on_pool_health t hook = t.pool_health_hooks <- hook :: t.pool_health_hooks

let make_group_client t ~id ~group =
  let grp = t.groups.(group) in
  (* Degraded-aware repair planner: volume-level signals (draining
     hosts, queued migrations, the client's own failure detector) steer
     which members serve repair reads.  One per (client, group); health
     is late-bound below because the client is built with the planner. *)
  let rp =
    Repair_planner.create
      ~pool_of:(fun ~index -> Placement.member t.placement ~group ~index)
      ~draining:(fun p -> Topology.weight (topology t) p <= 0.)
      ~queued:(fun ~index -> Hashtbl.mem t.queued_slots (group, index))
      ()
  in
  Hashtbl.replace t.planners (id, group) rp;
  let c =
    Client.of_transport
      ~sink:(trace_sink t ~group)
      ~locate:(fun ~slot ~pos -> Layout.node_of grp.g_layout ~stripe:slot ~pos)
      ~repair_planner:(Repair_planner.planner rp ~layout:grp.g_layout)
      t.cfg t.code (transport t ~id ~group)
  in
  Repair_planner.set_health rp (Client.health c);
  (* Aggregate every client's per-member failure detector into
     pool-node-level health events: member index -> hosting pool node
     via the (current) placement.  Hooks must only enqueue (they fire
     inside a transport call stack — see Supervisor). *)
  Health.on_transition (Client.health c) (fun (tr : Health.transition) ->
      if t.pool_health_hooks <> [] then begin
        let p = Placement.member t.placement ~group ~index:tr.Health.node in
        List.iter
          (fun hook -> hook ~now:tr.Health.at ~node:p ~state:tr.Health.to_)
          t.pool_health_hooks
      end);
  c

let group_planner t ~id ~group = Hashtbl.find_opt t.planners (id, group)

let spawn t f = Fiber.spawn t.engine f
let run ?until t = Engine.run ?until t.engine
