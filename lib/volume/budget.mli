(** Shared token-bucket ops budget for background work.

    The maintenance scheduler and the self-healing supervisor draw from
    one bucket, so routine sweeps plus event-driven repair together
    cannot exceed the configured background rate.  Urgent takers
    (supervisor repair) are served ahead of routine ones: while any
    urgent section is open, non-urgent {!take}s park — but urgent work
    still pays full token price.  All pacing is driven by the supplied
    clock (the simulated one), so seeded runs stay deterministic. *)

type t

val create : rate:float -> cap:float -> now:(unit -> float) -> t
(** Bucket refilling at [rate] tokens per second up to [cap], starting
    full.  @raise Invalid_argument unless both are positive. *)

val rate : t -> float

val take : ?urgent:bool -> t -> float -> unit
(** Block (fiber-sleep) until [cost] tokens are available, then spend
    them.  Non-urgent callers additionally wait for every open urgent
    section to close first.  @raise Invalid_argument on negative cost. *)

val try_take : t -> float -> bool
(** Non-blocking variant: spend [cost] tokens and return [true] if they
    are available right now (and no urgent section is open), else leave
    the bucket untouched and return [false].  Never fiber-sleeps, so it
    is safe outside a fiber — the lever for shed-instead-of-wait
    admission (per-tenant QoS metering).
    @raise Invalid_argument on negative cost. *)

val begin_urgent : t -> unit
(** Open an urgent section: until the matching {!end_urgent}, non-urgent
    {!take}s park.  Sections nest (counted). *)

val end_urgent : t -> unit
(** Close one urgent section.  @raise Invalid_argument if none open. *)
