(** Simulated substrate for a sharded volume: one discrete-event
    network hosting a pool of [m] storage nodes, over which [G]
    independent AJX stripe groups are placed by a {!Placement}.

    Each group owns its directory, layout, metrics registry and
    per-(group, member) storage state, but members of co-located groups
    bind to the {e same} pool network node — groups sharing a pool node
    contend for its NIC and CPU, which is what saturates the volume's
    scaling curve as [G] grows.

    Failure model: pool nodes fail-stop and restart.  While a node is
    down, transports report [`Node_down] (the reliable detection
    recovery needs to skip the member); a {!restart_node} installs a
    fresh network node under the same site and remaps every hosted group
    member to a new generation with INIT slots, re-entering service
    through monitor-driven recovery (Sec 3.10, Fig 6).  A call that
    raced a remap is transparently retried against the fresh entry. *)

type t

val create :
  ?net_config:Net.config ->
  ?rotate:bool ->
  ?seed:int ->
  ?faults:Net.faults ->
  placement:Placement.t ->
  Config.t ->
  t
(** One simulated network with [Placement.pool] storage nodes and
    [Placement.groups] AJX instances over them.  The placement's
    [nodes_per_group] must equal the config's [n].
    @raise Invalid_argument otherwise. *)

val engine : t -> Engine.t
val net : t -> Net.t
val stats : t -> Stats.t
val config : t -> Config.t
val code : t -> Rs_code.t
val placement : t -> Placement.t
val topology : t -> Topology.t
val now : t -> float

val pool_size : t -> int
(** Current pool node count (grows with {!add_node}). *)

val groups : t -> int
val group_layout : t -> int -> Layout.t
val group_directory : t -> int -> Directory.t

val group_metrics : t -> int -> Metrics.t
(** Per-group metrics registry, fed by every client of that group —
    the per-group label the volume benchmarks slice on. *)

val metrics : t -> Metrics.t
(** Fresh registry holding the merged counters/latencies of every
    group (deterministic under a fixed seed). *)

val touch : t -> group:int -> slot:int -> unit
val used_slots : t -> group:int -> int list
(** Stripes a group has served (sorted) — the maintenance monitor's
    slot universe.  Recorded automatically by every transport call. *)

val node_alive : t -> int -> bool
val crash_node : t -> int -> unit
(** Fail-stop a pool node: every group member hosted on it goes dead. *)

val restart_node : t -> int -> unit
(** Bring a crashed pool node back: fresh network node under the same
    site, and every hosted group member remapped to the next generation
    (INIT slots).  No-op if the node is alive. *)

val revive_node : t -> int -> unit
(** Bring a crashed pool node back {e with its state intact} — the
    crash-recovery rejoin (as opposed to {!restart_node}'s
    disk-lost replacement).  A fresh network node is installed under the
    same site and every hosted group member is {!Directory.rebind}-ed in
    place: same store, next generation.  Each store is swept by
    {!Storage_node.quarantine_inflight} (slots caught mid-reconstruction
    demote to INIT; counted in {!stats} as ["pool.slots_quarantined"]);
    every other slot keeps its blocks and rejoins as an epoch-stale
    delta-repair target.  No-op if alive. *)

val schedule_outage : t -> at:float -> node:int -> down_for:float -> unit

val schedule_blip : t -> at:float -> node:int -> down_for:float -> unit
(** Like {!schedule_outage} but the node returns via {!revive_node}
    (state kept) — the transient-outage case that delta repair and lazy
    repair floors target. *)

val fail_over : ?only:int list -> t -> node:int -> int list
(** Re-home every group member hosted on the {e dead} pool node [node]
    ([only] restricts to the listed groups — the supervisor's
    partial-failover lever when some of the node's groups are parked on
    a lazy-repair grace timer):
    each moves to an alive, least-loaded pool node not already serving
    its group ({!Placement.reassign}) and its directory entry is
    remapped to a fresh generation (INIT slots on the new host, repaired
    by Fig 6 recovery).  Returns the groups that had a member moved —
    the supervisor's targeted-repair set.  Members with no legal
    destination are left in place.
    @raise Invalid_argument if [node] is alive or out of range. *)

(** {1 Elastic membership}

    Capacity changes are metadata-only: they edit the topology, re-run
    the placement selector and enqueue the member-migration diff.  The
    {!Rebalancer} drains the queue in the background, rebuilding each
    moved member on its new home through the Fig 6 recovery path while
    client traffic continues. *)

val add_node : ?weight:float -> t -> host:int -> rack:int -> zone:int -> int
(** Join a fresh pool node (default weight [1.]) inside the given
    failure domains (existing or new ids — see {!Topology.add_node}),
    install its network node, and enqueue the placement diff.  Returns
    the new pool index. *)

val drain_node : t -> int -> Placement.move list
(** Mark a node draining (weight 0): the selector stops picking it and
    the placement diff — every member it hosts, by the minimal-movement
    property — is enqueued for migration.  The node keeps serving until
    each member is rebuilt elsewhere (live migration, not failover).
    Returns the newly enqueued moves.
    @raise Invalid_argument if out of range. *)

val plan_rebalance : t -> Placement.move list
(** Recompute the placement diff against the current topology and
    enqueue any move not already queued (deduplicated per (group,
    member)); returns the newly enqueued moves.  Called automatically
    by {!add_node} and {!drain_node}. *)

val take_move : t -> Placement.move option
val requeue_move : t -> Placement.move -> unit
val queued_moves : t -> int

(** {1 Repair/rebalance coordination}

    Advisory per-group claims: the supervisor's targeted repair and the
    rebalancer's migrations both claim a group before touching its
    stripes, so the two never recover the same stripe concurrently.
    Holders must release in a [Fun.protect] finally. *)

val try_claim_group : t -> int -> bool
val release_group : t -> int -> unit

val set_faults : t -> Net.faults -> unit

(** {1 At-rest integrity faults}

    Silent faults below the protocol, drawn from a seeded {!Injector}
    (replayable).  Every injection is ledgered; the first sighting by
    {e any} defense layer — the node's own digest self-check, a
    client-side verified read, or the cross-member decode check — retires
    the entry and samples its detection lag.  Raw detection events are
    also counted in {!stats} ("integrity.node_detected",
    "integrity.node_stale", "integrity.client_detected",
    "integrity.client_stale"). *)

val corrupt_member : t -> group:int -> index:int -> slot:int -> bool
(** Flip seeded bit patterns in the stored block of [slot] on group
    member [index], record untouched.  [false] (and no ledger entry)
    when the slot holds no committed data. *)

type member_snapshot = Storage_node.snapshot

val snapshot_member :
  t -> group:int -> index:int -> slot:int -> member_snapshot option

val rollback_member :
  t -> group:int -> index:int -> slot:int -> member_snapshot -> bool
(** Stale-but-well-formed fault: restore a captured block {e and} its
    sealed record.  Detected only by the epoch check (if recovery
    finalized in between) or the cross-member decode check. *)

val integrity_injected : t -> int
(** Faults successfully injected (ledgered). *)

val integrity_detected : t -> int
(** Distinct injected faults seen by some defense layer. *)

val integrity_outstanding : t -> int
(** Injected faults not yet detected ([injected - detected]). *)

val integrity_lag : t -> float list
(** Detection lags (seconds, oldest first), one per detected fault —
    the scrub-lag distribution the integrity bench reports. *)

val set_pool_link_faults :
  t -> client:int -> node:int -> Net.faults option -> unit
(** Override (or clear) the fault policy of both directions of the link
    between a client and a pool node — the lever for lossy-but-alive
    (Suspect) nodes, as opposed to {!crash_node}'s fail-stop. *)

val on_note : t -> (float -> string -> unit) -> unit

val on_pool_health :
  t -> (now:float -> node:int -> state:Health.state -> unit) -> unit
(** Subscribe to pool-level health events: whenever any group client's
    failure detector moves a member between states, the member is
    translated to its hosting pool node (current placement) and every
    hook runs.  Hooks fire synchronously inside the observing client's
    call stack — they must only record/enqueue, never call back into
    the protocol (see {!Supervisor}). *)

val trace_sink : t -> group:int -> Trace.sink

val transport : t -> id:int -> group:int -> Transport.t
(** Transport for client [id] addressing one group.  All groups of one
    client share a single client-side network node (one NIC). *)

val make_group_client : t -> id:int -> group:int -> Client.t
(** Client for one group, wired with the group's trace sink, the
    layout-aware failure-detector keying, and a {!Repair_planner}
    (draining hosts and queued migrations never serve repair reads when
    an alternative exists; consecutive rebuilds spread across
    sources). *)

val group_planner : t -> id:int -> group:int -> Repair_planner.t option
(** The repair planner built for client [id]'s view of [group] by
    {!make_group_client} (test/diagnostic accessor). *)

val spawn : t -> (unit -> unit) -> unit
val run : ?until:float -> t -> unit
