(** Failure-domain topology of the storage pool.

    Every pool node (a disk, the leaf) lives inside a hierarchy of
    failure domains — [Disk < Host < Rack < Zone] — and carries a
    weight (relative capacity).  The topology is the ground truth the
    CRUSH-style {!Placement} selects against: group members must land
    in distinct domains at a configured level, and selection is
    weight-proportional, so heterogeneous pools fill evenly.

    The node set is elastic: {!add_node} grows the pool (node ids are
    dense and never reused) and {!set_weight} shrinks a node's share —
    weight [0.] marks it draining/retired, and the placement stops
    selecting it.  Both only take effect on the next
    {!Placement.plan}; nothing moves until the rebalancer applies the
    diff. *)

type level = Disk | Host | Rack | Zone

val level_to_string : level -> string
val level_of_string : string -> level option

(** Declarative spec for a regular topology: [zones] zones, each
    holding [racks_per_zone] racks of [hosts_per_rack] hosts with
    [disks_per_host] disks each, all at [weight] (default [1.]). *)
type spec = {
  zones : int;
  racks_per_zone : int;
  hosts_per_rack : int;
  disks_per_host : int;
  weight : float;
}

val spec :
  ?weight:float ->
  zones:int ->
  racks_per_zone:int ->
  hosts_per_rack:int ->
  disks_per_host:int ->
  unit ->
  spec

type t

val make : spec -> t
(** Build the regular topology described by [spec], nodes numbered
    depth-first (zone-major).
    @raise Invalid_argument unless every count is positive and the
    weight is positive. *)

val flat : int -> t
(** [flat m] is the degenerate topology of [m] unit-weight nodes, each
    its own host, rack and zone — distinct-domain placement at any
    level reduces to distinct nodes, reproducing the pre-topology
    behaviour of a flat pool. *)

val size : t -> int
(** Total node count, including drained (weight-0) nodes. *)

val weight : t -> int -> float
val total_weight : t -> float
(** Sum of all node weights (drained nodes contribute nothing). *)

val domain : t -> node:int -> level:level -> int
(** Identifier of the failure domain containing [node] at [level]
    ([domain ~level:Disk] is the node id itself).  Domain ids are
    stable and comparable only within one level. *)

val domains : t -> level -> int
(** Number of distinct domains at [level]. *)

val add_node : ?weight:float -> t -> host:int -> rack:int -> zone:int -> int
(** Grow the pool by one node inside the given (possibly new) domains
    and return its id ([size] before the call).  Domain ids may name
    existing domains (join an existing host/rack/zone) or fresh ones.
    @raise Invalid_argument on a negative weight. *)

val set_weight : t -> int -> float -> unit
(** Reweight a node; [0.] marks it draining — the placement selector
    skips it from then on.  @raise Invalid_argument if negative or the
    node is out of range. *)

val pp : Format.formatter -> t -> unit
(** Render the domain tree (zones, racks, hosts, disks with weights). *)

val to_string : t -> string
