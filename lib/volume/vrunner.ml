(* Volume-level experiment driver: the sharded counterpart of
   {!Runner.run}.  Spins up clients over one {!Shard_cluster}, each
   owning a {!Volume} (one protocol client per group) and a set of
   outstanding request fibers; optionally starts a {!Maintenance}
   scheduler; measures aggregate throughput, mean and tail latency over
   the window; and can record every operation for the regular-register
   checker — histories are keyed by logical block, i.e. per
   (group, slot, position), so the single-group checker applies
   unchanged.

   Tail latencies are computed from the complete in-window sample (no
   reservoir), so a seeded run reports byte-identical percentiles. *)

type result = {
  run : Report.run;
  p99_read : float; (* seconds; 0 when no sample *)
  p99_write : float;
  write_stalls : int; (* writes that tripped a retry limit (Stuck) *)
  maintenance_passes : int;
  maintenance_gc_rounds : int;
  maintenance_errors : int;
  maintenance_recoveries : int;
  maintenance_backoffs : int;
  failures : Report.failures; (* unified failure/health accounting *)
  supervisor_failovers : int;
  supervisor_repairs : int;
  supervisor_false_alarms : int;
  supervisor_deferrals : int; (* Down verdicts parked on a grace timer *)
  supervisor_catchups : int; (* deferrals resolved by the node returning *)
  detections : (int * float) list; (* (pool node, time) Down verdicts *)
  repaired_at : (int * float) list; (* (pool node, time) repair done *)
  repair_delta_hits : int; (* recoveries resolved by delta catch-up *)
  repair_full_rebuilds : int; (* recoveries that decoded k blocks *)
  repair_bytes_read : int; (* response bytes repair pulled from sources *)
  repair_bytes_shipped : int; (* request bytes repair pushed to targets *)
  rebalance_moves : int; (* member migrations applied *)
  rebalance_blocks : int; (* stripe blocks rebuilt on new hosts *)
  rebalance_skipped : int; (* stale queued moves dropped *)
  rebalance_errors : int;
  scrub_passes : int; (* completed background sweeps *)
  scrub_report : Scrub.report;
  scrub_errors : int;
  corruptions_injected : int; (* at-rest faults ledgered by the cluster *)
  corruptions_detected : int; (* distinct injected faults caught *)
  detection_lag : float list; (* injection -> first detection, oldest first *)
}

let next_tag = ref 1

let fresh_tag () =
  incr next_tag;
  !next_tag

let percentile q samples =
  match samples with
  | [] -> 0.
  | _ ->
    let arr = Array.of_list samples in
    Array.sort compare arr;
    let n = Array.length arr in
    let idx = int_of_float (ceil (q *. float_of_int n)) - 1 in
    arr.(max 0 (min (n - 1) idx))

type counters = {
  mutable c_read_ops : int;
  mutable c_write_ops : int;
  mutable c_read_lat : float;
  mutable c_write_lat : float;
  mutable read_samples : float list;
  mutable write_samples : float list;
  mutable stalls : int;
  mutable abandoned : int;
}

let run ?(outstanding = 8) ?(warmup = 0.05) ?(events = []) ?faults
    ?maintenance ?(supervise = false) ?(rebalance = false) ?scrub ?scrub_rate
    ?(gc_every = Some 0.05) ?check ~sc ~clients ~duration ~workload () =
  (match faults with Some f -> Shard_cluster.set_faults sc f | None -> ());
  let cfg = Shard_cluster.config sc in
  let block_size = cfg.Config.block_size in
  let start = Shard_cluster.now sc in
  let measure_from = start +. warmup in
  let t_end = measure_from +. duration in
  let ctr =
    {
      c_read_ops = 0;
      c_write_ops = 0;
      c_read_lat = 0.;
      c_write_lat = 0.;
      read_samples = [];
      write_samples = [];
      stalls = 0;
      abandoned = 0;
    }
  in
  let in_window t = t >= measure_from && t <= t_end in
  List.iter
    (fun (at, action) ->
      Engine.schedule (Shard_cluster.engine sc) ~at:(start +. at) (fun () ->
          action sc))
    events;
  let maint =
    match maintenance with
    | None -> None
    | Some ops_per_sec ->
      Some (Maintenance.start sc ~id:9999 ~ops_per_sec ~until:t_end ())
  in
  (* Self-healing: the supervisor shares the maintenance bucket when
     there is one, so event-driven repair preempts the round-robin but
     both stay inside the same background ops rate. *)
  let sup =
    if not supervise then None
    else
      let budget = Option.map Maintenance.budget maint in
      Some (Supervisor.start sc ~id:9998 ?budget ~until:t_end ())
  in
  (* Elastic rebalancing shares the same bucket, non-urgent: migrations
     yield to repair, and claims keep the two off the same group. *)
  let reb =
    if not rebalance then None
    else
      let budget = Option.map Maintenance.budget maint in
      Some (Rebalancer.start sc ~id:9997 ?budget ~replan:0.05 ~until:t_end ())
  in
  (* Background integrity scrub, sharing the same bucket (non-urgent)
     unless [scrub_rate] carves out a private one: sweeps pace
     themselves to the configured period. *)
  let scr =
    match scrub with
    | None -> None
    | Some period ->
      let budget =
        match scrub_rate with
        | Some rate ->
          let n = (Shard_cluster.config sc).Config.n in
          Some
            (Budget.create ~rate
               ~cap:(2. *. float_of_int ((2 * n) + 1))
               ~now:(fun () -> Shard_cluster.now sc))
        | None -> Option.map Maintenance.budget maint
      in
      Some (Scrubber.start sc ~id:9996 ?budget ~period ~until:t_end ())
  in
  for c = 0 to clients - 1 do
    let volume = Volume.create sc ~id:c in
    let gen = Generator.create ~seed:(0x5eed + (c * 131)) workload in
    let do_read block =
      let t0 = Shard_cluster.now sc in
      match Volume.read volume block with
      | v ->
        let t1 = Shard_cluster.now sc in
        (match check with
        | Some ck ->
          Checker.record_read ck ~block ~tag:(Checker.tag_of_block v)
            ~start:t0 ~finish:t1
        | None -> ());
        if in_window t1 then begin
          ctr.c_read_ops <- ctr.c_read_ops + 1;
          ctr.c_read_lat <- ctr.c_read_lat +. (t1 -. t0);
          ctr.read_samples <- (t1 -. t0) :: ctr.read_samples
        end
      | exception Client.Stuck _ -> ctr.stalls <- ctr.stalls + 1
    in
    let do_write block =
      let t0 = Shard_cluster.now sc in
      let tag, v =
        match check with
        | Some _ ->
          let tag = fresh_tag () in
          (tag, Checker.tag_block ~size:block_size ~tag)
        | None -> (0, Bytes.make block_size (Char.chr (block land 0xff)))
      in
      match Volume.write volume block v with
      | () ->
        let t1 = Shard_cluster.now sc in
        (match check with
        | Some ck ->
          Checker.record_write ck ~block ~tag ~start:t0 ~finish:(Some t1)
        | None -> ());
        if in_window t1 then begin
          ctr.c_write_ops <- ctr.c_write_ops + 1;
          ctr.c_write_lat <- ctr.c_write_lat +. (t1 -. t0);
          ctr.write_samples <- (t1 -. t0) :: ctr.write_samples
        end
      | exception Client.Write_abandoned _ ->
        (* Ambiguous swap timeout: unfinished for the checker. *)
        ctr.abandoned <- ctr.abandoned + 1;
        (match check with
        | Some ck -> Checker.record_write ck ~block ~tag ~start:t0 ~finish:None
        | None -> ())
      | exception Client.Stuck _ ->
        (* Retry limit drained (e.g. an outage outlasting the budget):
           the write may or may not land — unfinished, and counted. *)
        ctr.stalls <- ctr.stalls + 1;
        (match check with
        | Some ck -> Checker.record_write ck ~block ~tag ~start:t0 ~finish:None
        | None -> ())
    in
    let request_loop () =
      let rec go () =
        if Shard_cluster.now sc < t_end then begin
          let { Generator.op; block } = Generator.next gen in
          (match op with
          | Generator.Op_read -> do_read block
          | Generator.Op_write -> do_write block);
          go ()
        end
      in
      go ()
    in
    for _ = 1 to outstanding do
      Shard_cluster.spawn sc request_loop
    done;
    (* Per-client GC fibers (Fig 7): tids are per client, so each client
       must collect its own completed writes — groups it never wrote to
       are skipped.  Without this, recentlists go stale and the monitor
       starts repairing perfectly healthy stripes. *)
    match gc_every with
    | None -> ()
    | Some period ->
      Shard_cluster.spawn sc (fun () ->
          let rec gc_loop () =
            if Shard_cluster.now sc < t_end then begin
              Fiber.sleep period;
              for g = 0 to Volume.groups volume - 1 do
                let client = Volume.group_client volume g in
                if Client.pending_gc client > 0 then
                  try Client.collect_garbage client
                  with Client.Stuck _ -> ()
              done;
              gc_loop ()
            end
          in
          gc_loop ())
  done;
  let stats = Shard_cluster.stats sc in
  let phase_keys =
    List.map
      (fun p -> "recovery.phase." ^ Trace.recovery_phase_to_string p)
      Trace.all_recovery_phases
  in
  let metric_keys =
    [
      "rpc.retries";
      "rpc.giveups";
      "write.giveups";
      "read.hedges";
      "read.hedge_wins";
      "session.fast_fails";
      "health.to_down";
      "repair.delta_hits";
      "repair.full_rebuilds";
      "repair.bytes_read";
      "repair.bytes_shipped";
    ]
    @ phase_keys
  in
  let before =
    let m = Shard_cluster.metrics sc in
    List.map (fun key -> (key, Metrics.counter m key)) metric_keys
  in
  let msgs_before = Stats.counter stats "msgs" in
  let recov_before = Stats.counter stats "note.recovery.done" in
  Shard_cluster.run sc;
  let after = Shard_cluster.metrics sc in
  let delta key = Metrics.counter after key - List.assoc key before in
  let msgs = Stats.counter stats "msgs" -. msgs_before in
  let recoveries = Stats.counter stats "note.recovery.done" -. recov_before in
  let mb ops = float_of_int (ops * block_size) /. 1.0e6 /. duration in
  let run =
    {
      Report.duration;
      clients;
      outstanding;
      read_ops = ctr.c_read_ops;
      write_ops = ctr.c_write_ops;
      read_mbs = mb ctr.c_read_ops;
      write_mbs = mb ctr.c_write_ops;
      total_mbs = mb (ctr.c_read_ops + ctr.c_write_ops);
      read_latency =
        (if ctr.c_read_ops = 0 then 0.
         else ctr.c_read_lat /. float_of_int ctr.c_read_ops);
      write_latency =
        (if ctr.c_write_ops = 0 then 0.
         else ctr.c_write_lat /. float_of_int ctr.c_write_ops);
      msgs;
      recoveries;
      rpc_retries = delta "rpc.retries";
      rpc_giveups = delta "rpc.giveups";
      write_giveups = delta "write.giveups";
      recovery_phases =
        List.filter_map
          (fun key -> match delta key with 0 -> None | n -> Some (key, n))
          phase_keys;
    }
  in
  {
    run;
    p99_read = percentile 0.99 ctr.read_samples;
    p99_write = percentile 0.99 ctr.write_samples;
    write_stalls = ctr.stalls;
    maintenance_passes =
      (match maint with Some m -> Maintenance.passes m | None -> 0);
    maintenance_gc_rounds =
      (match maint with Some m -> Maintenance.gc_rounds m | None -> 0);
    maintenance_errors =
      (match maint with Some m -> Maintenance.errors m | None -> 0);
    maintenance_recoveries =
      (match maint with Some m -> Maintenance.recoveries m | None -> 0);
    maintenance_backoffs =
      (match maint with Some m -> Maintenance.backoffs m | None -> 0);
    failures =
      {
        Report.write_abandoned = ctr.abandoned;
        write_stuck = ctr.stalls;
        hedges = delta "read.hedges";
        hedge_wins = delta "read.hedge_wins";
        fast_fails = delta "session.fast_fails";
        quarantines = delta "health.to_down";
      };
    supervisor_failovers =
      (match sup with Some s -> Supervisor.failovers s | None -> 0);
    supervisor_repairs =
      (match sup with Some s -> Supervisor.repairs s | None -> 0);
    supervisor_false_alarms =
      (match sup with Some s -> Supervisor.false_alarms s | None -> 0);
    supervisor_deferrals =
      (match sup with Some s -> Supervisor.deferrals s | None -> 0);
    supervisor_catchups =
      (match sup with Some s -> Supervisor.catchups s | None -> 0);
    detections = (match sup with Some s -> Supervisor.detections s | None -> []);
    repaired_at = (match sup with Some s -> Supervisor.repaired s | None -> []);
    repair_delta_hits = delta "repair.delta_hits";
    repair_full_rebuilds = delta "repair.full_rebuilds";
    repair_bytes_read = delta "repair.bytes_read";
    repair_bytes_shipped = delta "repair.bytes_shipped";
    rebalance_moves = (match reb with Some r -> Rebalancer.moves r | None -> 0);
    rebalance_blocks =
      (match reb with Some r -> Rebalancer.blocks_moved r | None -> 0);
    rebalance_skipped =
      (match reb with Some r -> Rebalancer.skipped r | None -> 0);
    rebalance_errors =
      (match reb with Some r -> Rebalancer.errors r | None -> 0);
    scrub_passes = (match scr with Some s -> Scrubber.passes s | None -> 0);
    scrub_report =
      (match scr with Some s -> Scrubber.report s | None -> Scrub.empty);
    scrub_errors = (match scr with Some s -> Scrubber.errors s | None -> 0);
    corruptions_injected = Shard_cluster.integrity_injected sc;
    corruptions_detected = Shard_cluster.integrity_detected sc;
    detection_lag = Shard_cluster.integrity_lag sc;
  }

(* ------------------------------------------------------------------ *)
(* Profile-driven, multi-tenant runs.

   Several tenants share one volume (same shard cluster, same logical
   block space), each driving its own {!Profile} — closed-loop with a
   fixed fiber count, or open-loop with seeded Poisson arrivals and
   bounded in-flight admission (excess arrivals are shed and counted,
   never queued, so latency-under-load is visible instead of being
   masked by head-of-line blocking).  A tenant may be metered by a
   per-tenant token bucket ({!Budget}, in blocks per simulated second):
   every request pays its size in tokens before being issued, so a
   greedy tenant is admission-limited to its configured share while an
   unmetered one competes freely. *)

type tenant = {
  tn_name : string;
  tn_profile : Profile.t;
  tn_qos_blocks_per_sec : float option;
  tn_seed : int;
}

type tenant_result = {
  tr_name : string;
  tr_read_reqs : int;
  tr_write_reqs : int;
  tr_read_blocks : int;
  tr_write_blocks : int;
  tr_drops : int;
  tr_stalls : int;
  tr_mean : float; (* seconds; 0 when no sample *)
  tr_p50 : float;
  tr_p99 : float;
  tr_mbs : float;
}

type size_stats = {
  ss_reqs : int;
  ss_p50 : float;
  ss_p99 : float;
  ss_mbs : float;
}

type profile_result = {
  pf_label : string;
  pf_duration : float;
  pf_read_reqs : int;
  pf_write_reqs : int;
  pf_read_mbs : float;
  pf_write_mbs : float;
  pf_p50_read : float;
  pf_p50_write : float;
  pf_p99_read : float;
  pf_p99_write : float;
  pf_drops : int;
  pf_stalls : int;
  pf_mean_inflight : float;
  pf_max_inflight : int;
  pf_sizes : (int * size_stats) list; (* keyed by request size in blocks *)
  pf_tenants : tenant_result list;
}

type tenant_ctr = {
  mutable t_read_reqs : int;
  mutable t_write_reqs : int;
  mutable t_read_blocks : int;
  mutable t_write_blocks : int;
  mutable t_drops : int;
  mutable t_stalls : int;
  mutable t_samples : float list; (* all request latencies *)
  mutable t_read_samples : float list;
  mutable t_write_samples : float list;
  mutable t_by_size : (int * float) list; (* (size, latency) per request *)
  mutable t_inflight : int;
  mutable t_depth_sum : int; (* in-flight seen at each in-window arrival *)
  mutable t_depth_samples : int;
  mutable t_depth_max : int;
}

let run_profile ?(warmup = 0.05) ?(events = []) ?(blocks = 256) ~sc ~tenants
    ~duration () =
  if tenants = [] then invalid_arg "Vrunner.run_profile: no tenants";
  let cfg = Shard_cluster.config sc in
  let block_size = cfg.Config.block_size in
  let start = Shard_cluster.now sc in
  let measure_from = start +. warmup in
  let t_end = measure_from +. duration in
  let in_window t = t >= measure_from && t <= t_end in
  List.iter
    (fun (at, action) ->
      Engine.schedule (Shard_cluster.engine sc) ~at:(start +. at) (fun () ->
          action sc))
    events;
  let ctrs =
    List.mapi
      (fun idx tn ->
        let ctr =
          {
            t_read_reqs = 0;
            t_write_reqs = 0;
            t_read_blocks = 0;
            t_write_blocks = 0;
            t_drops = 0;
            t_stalls = 0;
            t_samples = [];
            t_read_samples = [];
            t_write_samples = [];
            t_by_size = [];
            t_inflight = 0;
            t_depth_sum = 0;
            t_depth_samples = 0;
            t_depth_max = 0;
          }
        in
        let volume = Volume.create sc ~id:idx in
        let gen = Profile.generator tn.tn_profile ~seed:tn.tn_seed ~blocks in
        let bucket =
          Option.map
            (fun rate ->
              (* Burst of ~50 ms of tokens, but always at least one
                 largest request so big transfers cannot deadlock. *)
              let cap =
                Float.max (rate /. 20.)
                  (float_of_int (Profile.max_size tn.tn_profile))
              in
              Budget.create ~rate ~cap ~now:(fun () -> Shard_cluster.now sc))
            tn.tn_qos_blocks_per_sec
        in
        (* One block op, exception-safe: a Stuck/abandoned op must fail
           the request, never escape its fiber and kill the engine. *)
        let block_op op l =
          try
            (match op with
            | Generator.Op_read -> ignore (Volume.read volume l)
            | Generator.Op_write ->
              Volume.write volume l
                (Bytes.make block_size (Char.chr (l land 0xff))));
            true
          with Client.Stuck _ | Client.Write_abandoned _ -> false
        in
        let issue ({ Profile.op; block; size } as _req) =
          (* QoS: pay the request's size in tokens before touching the
             volume (blocking take — admission already happened). *)
          (match bucket with
          | Some b -> Budget.take b (float_of_int size)
          | None -> ());
          let t0 = Shard_cluster.now sc in
          let ok =
            if size = 1 then block_op op block
            else
              Fiber.fork_all
                (List.init size (fun j () -> block_op op (block + j)))
              |> List.for_all Fun.id
          in
          let t1 = Shard_cluster.now sc in
          if not ok then ctr.t_stalls <- ctr.t_stalls + 1
          else if in_window t1 then begin
            let lat = t1 -. t0 in
            (match op with
            | Generator.Op_read ->
              ctr.t_read_reqs <- ctr.t_read_reqs + 1;
              ctr.t_read_blocks <- ctr.t_read_blocks + size;
              ctr.t_read_samples <- lat :: ctr.t_read_samples
            | Generator.Op_write ->
              ctr.t_write_reqs <- ctr.t_write_reqs + 1;
              ctr.t_write_blocks <- ctr.t_write_blocks + size;
              ctr.t_write_samples <- lat :: ctr.t_write_samples);
            ctr.t_samples <- lat :: ctr.t_samples;
            ctr.t_by_size <- (size, lat) :: ctr.t_by_size
          end
        in
        let sample_depth () =
          if in_window (Shard_cluster.now sc) then begin
            ctr.t_depth_sum <- ctr.t_depth_sum + ctr.t_inflight;
            ctr.t_depth_samples <- ctr.t_depth_samples + 1;
            ctr.t_depth_max <- max ctr.t_depth_max ctr.t_inflight
          end
        in
        (match tn.tn_profile.Profile.arrival with
        | Profile.Closed { outstanding } ->
          for _ = 1 to outstanding do
            Shard_cluster.spawn sc (fun () ->
                let rec go () =
                  if Shard_cluster.now sc < t_end then begin
                    let req = Profile.next gen in
                    sample_depth ();
                    ctr.t_inflight <- ctr.t_inflight + 1;
                    issue req;
                    ctr.t_inflight <- ctr.t_inflight - 1;
                    go ()
                  end
                in
                go ())
          done
        | Profile.Open { max_inflight; _ } ->
          (* Open loop: the dispatcher samples the arrival schedule from
             its own seeded stream — gaps and requests are drawn whether
             or not the arrival is admitted, so the schedule never
             depends on service times or drops. *)
          Shard_cluster.spawn sc (fun () ->
              let rec go () =
                let gap = Profile.next_gap gen in
                Fiber.sleep gap;
                if Shard_cluster.now sc < t_end then begin
                  let req = Profile.next gen in
                  sample_depth ();
                  if ctr.t_inflight >= max_inflight then begin
                    if in_window (Shard_cluster.now sc) then
                      ctr.t_drops <- ctr.t_drops + 1
                  end
                  else begin
                    ctr.t_inflight <- ctr.t_inflight + 1;
                    Shard_cluster.spawn sc (fun () ->
                        issue req;
                        ctr.t_inflight <- ctr.t_inflight - 1)
                  end;
                  go ()
                end
              in
              go ()));
        (tn, ctr))
      tenants
  in
  Shard_cluster.run sc;
  let mbs nblocks =
    float_of_int (nblocks * block_size) /. 1.0e6 /. duration
  in
  let mean = function
    | [] -> 0.
    | l -> List.fold_left ( +. ) 0. l /. float_of_int (List.length l)
  in
  let tenant_results =
    List.map
      (fun (tn, c) ->
        {
          tr_name = tn.tn_name;
          tr_read_reqs = c.t_read_reqs;
          tr_write_reqs = c.t_write_reqs;
          tr_read_blocks = c.t_read_blocks;
          tr_write_blocks = c.t_write_blocks;
          tr_drops = c.t_drops;
          tr_stalls = c.t_stalls;
          tr_mean = mean c.t_samples;
          tr_p50 = percentile 0.5 c.t_samples;
          tr_p99 = percentile 0.99 c.t_samples;
          tr_mbs = mbs (c.t_read_blocks + c.t_write_blocks);
        })
      ctrs
  in
  let all_reads = List.concat_map (fun (_, c) -> c.t_read_samples) ctrs in
  let all_writes = List.concat_map (fun (_, c) -> c.t_write_samples) ctrs in
  let by_size = List.concat_map (fun (_, c) -> c.t_by_size) ctrs in
  let sizes =
    List.sort_uniq compare (List.map fst by_size)
    |> List.map (fun size ->
           let lats = List.filter_map
               (fun (s, l) -> if s = size then Some l else None)
               by_size
           in
           let reqs = List.length lats in
           ( size,
             {
               ss_reqs = reqs;
               ss_p50 = percentile 0.5 lats;
               ss_p99 = percentile 0.99 lats;
               ss_mbs = mbs (reqs * size);
             } ))
  in
  let sum f = List.fold_left (fun acc (_, c) -> acc + f c) 0 ctrs in
  let depth_sum = sum (fun c -> c.t_depth_sum) in
  let depth_samples = sum (fun c -> c.t_depth_samples) in
  {
    pf_label =
      String.concat "+"
        (List.sort_uniq compare
           (List.map (fun t -> t.tn_profile.Profile.name) tenants));
    pf_duration = duration;
    pf_read_reqs = sum (fun c -> c.t_read_reqs);
    pf_write_reqs = sum (fun c -> c.t_write_reqs);
    pf_read_mbs = mbs (sum (fun c -> c.t_read_blocks));
    pf_write_mbs = mbs (sum (fun c -> c.t_write_blocks));
    pf_p50_read = percentile 0.5 all_reads;
    pf_p50_write = percentile 0.5 all_writes;
    pf_p99_read = percentile 0.99 all_reads;
    pf_p99_write = percentile 0.99 all_writes;
    pf_drops = sum (fun c -> c.t_drops);
    pf_stalls = sum (fun c -> c.t_stalls);
    pf_mean_inflight =
      (if depth_samples = 0 then 0.
       else float_of_int depth_sum /. float_of_int depth_samples);
    pf_max_inflight =
      List.fold_left (fun m (_, c) -> max m c.t_depth_max) 0 ctrs;
    pf_sizes = sizes;
    pf_tenants = tenant_results;
  }
