(* Volume-level experiment driver: the sharded counterpart of
   {!Runner.run}.  Spins up clients over one {!Shard_cluster}, each
   owning a {!Volume} (one protocol client per group) and a set of
   outstanding request fibers; optionally starts a {!Maintenance}
   scheduler; measures aggregate throughput, mean and tail latency over
   the window; and can record every operation for the regular-register
   checker — histories are keyed by logical block, i.e. per
   (group, slot, position), so the single-group checker applies
   unchanged.

   Tail latencies are computed from the complete in-window sample (no
   reservoir), so a seeded run reports byte-identical percentiles. *)

type result = {
  run : Report.run;
  p99_read : float; (* seconds; 0 when no sample *)
  p99_write : float;
  write_stalls : int; (* writes that tripped a retry limit (Stuck) *)
  maintenance_passes : int;
  maintenance_gc_rounds : int;
  maintenance_errors : int;
  maintenance_recoveries : int;
  maintenance_backoffs : int;
  failures : Report.failures; (* unified failure/health accounting *)
  supervisor_failovers : int;
  supervisor_repairs : int;
  supervisor_false_alarms : int;
  detections : (int * float) list; (* (pool node, time) Down verdicts *)
  repaired_at : (int * float) list; (* (pool node, time) repair done *)
}

let next_tag = ref 1

let fresh_tag () =
  incr next_tag;
  !next_tag

let percentile q samples =
  match samples with
  | [] -> 0.
  | _ ->
    let arr = Array.of_list samples in
    Array.sort compare arr;
    let n = Array.length arr in
    let idx = int_of_float (ceil (q *. float_of_int n)) - 1 in
    arr.(max 0 (min (n - 1) idx))

type counters = {
  mutable c_read_ops : int;
  mutable c_write_ops : int;
  mutable c_read_lat : float;
  mutable c_write_lat : float;
  mutable read_samples : float list;
  mutable write_samples : float list;
  mutable stalls : int;
  mutable abandoned : int;
}

let run ?(outstanding = 8) ?(warmup = 0.05) ?(events = []) ?faults
    ?maintenance ?(supervise = false) ?(gc_every = Some 0.05) ?check ~sc
    ~clients ~duration ~workload () =
  (match faults with Some f -> Shard_cluster.set_faults sc f | None -> ());
  let cfg = Shard_cluster.config sc in
  let block_size = cfg.Config.block_size in
  let start = Shard_cluster.now sc in
  let measure_from = start +. warmup in
  let t_end = measure_from +. duration in
  let ctr =
    {
      c_read_ops = 0;
      c_write_ops = 0;
      c_read_lat = 0.;
      c_write_lat = 0.;
      read_samples = [];
      write_samples = [];
      stalls = 0;
      abandoned = 0;
    }
  in
  let in_window t = t >= measure_from && t <= t_end in
  List.iter
    (fun (at, action) ->
      Engine.schedule (Shard_cluster.engine sc) ~at:(start +. at) (fun () ->
          action sc))
    events;
  let maint =
    match maintenance with
    | None -> None
    | Some ops_per_sec ->
      Some (Maintenance.start sc ~id:9999 ~ops_per_sec ~until:t_end ())
  in
  (* Self-healing: the supervisor shares the maintenance bucket when
     there is one, so event-driven repair preempts the round-robin but
     both stay inside the same background ops rate. *)
  let sup =
    if not supervise then None
    else
      let budget = Option.map Maintenance.budget maint in
      Some (Supervisor.start sc ~id:9998 ?budget ~until:t_end ())
  in
  for c = 0 to clients - 1 do
    let volume = Volume.create sc ~id:c in
    let gen = Generator.create ~seed:(0x5eed + (c * 131)) workload in
    let do_read block =
      let t0 = Shard_cluster.now sc in
      match Volume.read volume block with
      | v ->
        let t1 = Shard_cluster.now sc in
        (match check with
        | Some ck ->
          Checker.record_read ck ~block ~tag:(Checker.tag_of_block v)
            ~start:t0 ~finish:t1
        | None -> ());
        if in_window t1 then begin
          ctr.c_read_ops <- ctr.c_read_ops + 1;
          ctr.c_read_lat <- ctr.c_read_lat +. (t1 -. t0);
          ctr.read_samples <- (t1 -. t0) :: ctr.read_samples
        end
      | exception Client.Stuck _ -> ctr.stalls <- ctr.stalls + 1
    in
    let do_write block =
      let t0 = Shard_cluster.now sc in
      let tag, v =
        match check with
        | Some _ ->
          let tag = fresh_tag () in
          (tag, Checker.tag_block ~size:block_size ~tag)
        | None -> (0, Bytes.make block_size (Char.chr (block land 0xff)))
      in
      match Volume.write volume block v with
      | () ->
        let t1 = Shard_cluster.now sc in
        (match check with
        | Some ck ->
          Checker.record_write ck ~block ~tag ~start:t0 ~finish:(Some t1)
        | None -> ());
        if in_window t1 then begin
          ctr.c_write_ops <- ctr.c_write_ops + 1;
          ctr.c_write_lat <- ctr.c_write_lat +. (t1 -. t0);
          ctr.write_samples <- (t1 -. t0) :: ctr.write_samples
        end
      | exception Client.Write_abandoned _ ->
        (* Ambiguous swap timeout: unfinished for the checker. *)
        ctr.abandoned <- ctr.abandoned + 1;
        (match check with
        | Some ck -> Checker.record_write ck ~block ~tag ~start:t0 ~finish:None
        | None -> ())
      | exception Client.Stuck _ ->
        (* Retry limit drained (e.g. an outage outlasting the budget):
           the write may or may not land — unfinished, and counted. *)
        ctr.stalls <- ctr.stalls + 1;
        (match check with
        | Some ck -> Checker.record_write ck ~block ~tag ~start:t0 ~finish:None
        | None -> ())
    in
    let request_loop () =
      let rec go () =
        if Shard_cluster.now sc < t_end then begin
          let { Generator.op; block } = Generator.next gen in
          (match op with
          | Generator.Op_read -> do_read block
          | Generator.Op_write -> do_write block);
          go ()
        end
      in
      go ()
    in
    for _ = 1 to outstanding do
      Shard_cluster.spawn sc request_loop
    done;
    (* Per-client GC fibers (Fig 7): tids are per client, so each client
       must collect its own completed writes — groups it never wrote to
       are skipped.  Without this, recentlists go stale and the monitor
       starts repairing perfectly healthy stripes. *)
    match gc_every with
    | None -> ()
    | Some period ->
      Shard_cluster.spawn sc (fun () ->
          let rec gc_loop () =
            if Shard_cluster.now sc < t_end then begin
              Fiber.sleep period;
              for g = 0 to Volume.groups volume - 1 do
                let client = Volume.group_client volume g in
                if Client.pending_gc client > 0 then
                  try Client.collect_garbage client
                  with Client.Stuck _ -> ()
              done;
              gc_loop ()
            end
          in
          gc_loop ())
  done;
  let stats = Shard_cluster.stats sc in
  let phase_keys =
    List.map
      (fun p -> "recovery.phase." ^ Trace.recovery_phase_to_string p)
      Trace.all_recovery_phases
  in
  let metric_keys =
    [
      "rpc.retries";
      "rpc.giveups";
      "write.giveups";
      "read.hedges";
      "read.hedge_wins";
      "session.fast_fails";
      "health.to_down";
    ]
    @ phase_keys
  in
  let before =
    let m = Shard_cluster.metrics sc in
    List.map (fun key -> (key, Metrics.counter m key)) metric_keys
  in
  let msgs_before = Stats.counter stats "msgs" in
  let recov_before = Stats.counter stats "note.recovery.done" in
  Shard_cluster.run sc;
  let after = Shard_cluster.metrics sc in
  let delta key = Metrics.counter after key - List.assoc key before in
  let msgs = Stats.counter stats "msgs" -. msgs_before in
  let recoveries = Stats.counter stats "note.recovery.done" -. recov_before in
  let mb ops = float_of_int (ops * block_size) /. 1.0e6 /. duration in
  let run =
    {
      Report.duration;
      clients;
      outstanding;
      read_ops = ctr.c_read_ops;
      write_ops = ctr.c_write_ops;
      read_mbs = mb ctr.c_read_ops;
      write_mbs = mb ctr.c_write_ops;
      total_mbs = mb (ctr.c_read_ops + ctr.c_write_ops);
      read_latency =
        (if ctr.c_read_ops = 0 then 0.
         else ctr.c_read_lat /. float_of_int ctr.c_read_ops);
      write_latency =
        (if ctr.c_write_ops = 0 then 0.
         else ctr.c_write_lat /. float_of_int ctr.c_write_ops);
      msgs;
      recoveries;
      rpc_retries = delta "rpc.retries";
      rpc_giveups = delta "rpc.giveups";
      write_giveups = delta "write.giveups";
      recovery_phases =
        List.filter_map
          (fun key -> match delta key with 0 -> None | n -> Some (key, n))
          phase_keys;
    }
  in
  {
    run;
    p99_read = percentile 0.99 ctr.read_samples;
    p99_write = percentile 0.99 ctr.write_samples;
    write_stalls = ctr.stalls;
    maintenance_passes =
      (match maint with Some m -> Maintenance.passes m | None -> 0);
    maintenance_gc_rounds =
      (match maint with Some m -> Maintenance.gc_rounds m | None -> 0);
    maintenance_errors =
      (match maint with Some m -> Maintenance.errors m | None -> 0);
    maintenance_recoveries =
      (match maint with Some m -> Maintenance.recoveries m | None -> 0);
    maintenance_backoffs =
      (match maint with Some m -> Maintenance.backoffs m | None -> 0);
    failures =
      {
        Report.write_abandoned = ctr.abandoned;
        write_stuck = ctr.stalls;
        hedges = delta "read.hedges";
        hedge_wins = delta "read.hedge_wins";
        fast_fails = delta "session.fast_fails";
        quarantines = delta "health.to_down";
      };
    supervisor_failovers =
      (match sup with Some s -> Supervisor.failovers s | None -> 0);
    supervisor_repairs =
      (match sup with Some s -> Supervisor.repairs s | None -> 0);
    supervisor_false_alarms =
      (match sup with Some s -> Supervisor.false_alarms s | None -> 0);
    detections = (match sup with Some s -> Supervisor.detections s | None -> []);
    repaired_at = (match sup with Some s -> Supervisor.repaired s | None -> []);
  }
