(** Degraded-aware repair-source planner: volume-level source selection
    for {!Recovery} (delta-repair pulls and full-rebuild reads).

    One instance per group client.  It ranks candidate source members by
    additive penalty — draining pool node (dominant: such a member is
    chosen only when no alternative exists), member queued for
    migration, Suspect/Probation failure-detector state, and how many
    repair reads the member has already served ([note] feedback, which
    spreads consecutive rebuilds across distinct sources). *)

type t

val create :
  pool_of:(index:int -> int) ->
  draining:(int -> bool) ->
  queued:(index:int -> bool) ->
  unit ->
  t
(** [pool_of] maps a group member index to its hosting pool node,
    [draining] says whether a pool node has weight 0, [queued] whether
    the member is in the rebalancer's move queue.  All three are
    consulted live on every [rank] call, so placement changes take
    effect immediately. *)

val set_health : t -> Health.t -> unit
(** Late-bind the group client's failure detector (the client is
    constructed {e with} the planner, so the detector does not exist yet
    at {!create} time).  Until set, health contributes no penalty. *)

val planner : t -> layout:Layout.t -> Recovery.planner
(** The {!Recovery.planner} view, translating stripe positions to
    member indices through [layout]. *)

val source_reads : t -> index:int -> int
(** Repair reads member [index] has served so far (test accessor). *)

val picks : t -> (int * int) list
(** Every [(slot, pos)] source pick reported via [note], oldest first
    (test accessor). *)
