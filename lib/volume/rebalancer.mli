(** Live migration engine for elastic membership.

    {!Shard_cluster.add_node} and {!Shard_cluster.drain_node} are
    metadata-only: they edit the topology and enqueue the placement
    diff.  The rebalancer fiber drains that queue, moving one group
    member at a time: re-validate the move against the live placement,
    claim the group (so the {!Supervisor}'s targeted repair and a
    migration never rebuild the same stripe concurrently), reassign +
    directory remap, then rebuild every used stripe on the new host
    through Fig 6 recovery — all priced against the shared background
    {!Budget} {e without} the urgent flag, so migrations yield to
    failure repair.

    Stale moves (member already re-homed, destination dead or
    draining) are dropped and counted in {!skipped}; with [replan > 0]
    the rebalancer periodically re-plans so dropped moves are
    re-derived against the current topology.  Deterministic under a
    fixed seed. *)

type t

val start :
  Shard_cluster.t ->
  id:int ->
  ?budget:Budget.t ->
  ?poll:float ->
  ?replan:float ->
  until:float ->
  unit ->
  t
(** Spawn the rebalancer as client [id] (no foreground client shares
    it).  [budget] should be the maintenance scheduler's bucket so
    migration is priced against the same background ops rate; a
    private 2000 ops/s bucket is created when omitted.  [poll]
    (default 0.5 ms) is the queue poll interval; [replan] (default 0 =
    off) re-runs {!Shard_cluster.plan_rebalance} at that period while
    the queue is idle, picking up moves lost to skips.  The fiber
    exits at [until] or on {!stop}.
    @raise Invalid_argument unless [poll > 0] and [replan >= 0]. *)

val stop : t -> unit

val moves : t -> int
(** Member migrations applied (reassign + remap + rebuild). *)

val blocks_moved : t -> int
(** Stripe blocks rebuilt on new hosts across all migrations — the
    volume's data-movement cost, compared against the optimal
    (members-changed × used-stripes) in the topology bench. *)

val skipped : t -> int
(** Queued moves dropped as stale (member already re-homed by a
    failover or newer plan, destination dead or draining). *)

val errors : t -> int
(** Per-stripe rebuilds absorbed on Stuck/Data_loss (the maintenance
    sweep retries them later). *)
