(* Self-healing supervisor for a sharded volume: subscribes to
   pool-level health transitions (the per-client failure detectors of
   {!Health}, aggregated by {!Shard_cluster.on_pool_health}) and drives
   the existing repair machinery automatically — no scripted remap.

   Event flow: a group client's detector moves a member to Down -> the
   shard cluster translates the member to its hosting pool node and our
   hook enqueues it (hooks run inside the observing client's call stack,
   so they must never call back into the protocol).  The supervisor
   fiber drains the queue: it double-checks the node against ground
   truth ({!Shard_cluster.node_alive} — an accrual detector can reach
   Down over a lossy-but-alive link, which needs no failover, only the
   circuit breaker it already got), then re-homes every hosted group
   member ({!Shard_cluster.fail_over}: placement reassign + directory
   remap to INIT slots) and runs Fig 6 recovery over exactly the
   affected groups' used stripes, rebuilding each on its new host.

   Repair is priced against the shared background {!Budget} with the
   urgent flag, so self-healing preempts the maintenance round-robin
   but the two together still cannot exceed the background ops rate.
   All pacing derives from the simulated clock — a seeded run detects,
   fails over and repairs at byte-identical times. *)

(* A Down node whose groups all still meet the repair floor: no data
   is at risk, so rebuilding can wait out a transient outage.  If the
   node returns before [df_deadline] the stripes are caught up in place
   (delta repair against the revived, epoch-stale members) under the
   ordinary non-urgent budget; if the deadline passes with the node
   still dead, the deferred groups take the urgent failover path. *)
type deferral = { df_deadline : float; df_groups : int list }

type t = {
  sc : Shard_cluster.t;
  volume : Volume.t;
  budget : Budget.t;
  poll : float;
  until : float;
  pending : int Queue.t;
  queued : (int, unit) Hashtbl.t;
  deferred : (int, deferral) Hashtbl.t; (* pool node -> grace timer *)
  mutable stopped : bool;
  mutable failovers : int; (* group members re-homed off dead nodes *)
  mutable repairs : int; (* stripes recovered *)
  mutable errors : int; (* Stuck / Data_loss absorbed *)
  mutable false_alarms : int; (* Down verdicts on alive (lossy) nodes *)
  mutable deferrals : int; (* Down verdicts parked on a grace timer *)
  mutable catchups : int; (* deferrals resolved by the node returning *)
  mutable detections : (int * float) list; (* (node, time), reversed *)
  mutable repaired : (int * float) list; (* (node, time), reversed *)
}

let failovers t = t.failovers
let repairs t = t.repairs
let errors t = t.errors
let false_alarms t = t.false_alarms
let deferrals t = t.deferrals
let catchups t = t.catchups
let detections t = List.rev t.detections
let repaired t = List.rev t.repaired
let stop t = t.stopped <- true

(* Live redundancy of a group: members whose hosting pool node answers.
   This is ground truth (the simulator's liveness), matching the
   node_alive double-check the Down verdict already gets. *)
let live_members t g =
  Array.fold_left
    (fun acc p -> if Shard_cluster.node_alive t.sc p then acc + 1 else acc)
    0
    (Placement.group_nodes (Shard_cluster.placement t.sc) g)

(* Wait for a group's claim.  Claims are acquired BEFORE the budget's
   urgent section opens: the rebalancer may hold a claim while parked in
   a non-urgent Budget.take, so waiting on a claim with urgency raised
   would deadlock the bucket.  Claims first, urgency second — the
   rebalancer always drains and releases. *)
let wait_claim t g =
  while not (Shard_cluster.try_claim_group t.sc g) do
    Fiber.sleep t.poll
  done

(* Urgent path (below the repair floor, or grace expired): re-home the
   given groups' members off the dead node and rebuild their stripes on
   the new hosts, preempting maintenance via the budget's urgent flag. *)
let fail_over_groups t node ~only =
  let n = (Shard_cluster.config t.sc).Config.n in
  let slot_cost = float_of_int (n + 1) in
  List.iter (wait_claim t) only;
  Fun.protect
    ~finally:(fun () -> List.iter (Shard_cluster.release_group t.sc) only)
    (fun () ->
      (* The node may have restarted while we waited on claims; a
         restart remaps its members itself, so nothing is left to
         re-home. *)
      if not (Shard_cluster.node_alive t.sc node) then begin
        Budget.begin_urgent t.budget;
        Fun.protect
          ~finally:(fun () -> Budget.end_urgent t.budget)
          (fun () ->
            let groups = Shard_cluster.fail_over ~only t.sc ~node in
            t.failovers <- t.failovers + List.length groups;
            List.iter
              (fun g ->
                let client = Volume.group_client t.volume g in
                List.iter
                  (fun slot ->
                    Budget.take ~urgent:true t.budget slot_cost;
                    try
                      (* The re-homed member starts from INIT slots, so
                         a delta probe can never succeed — rebuild
                         directly. *)
                      Client.recover_slot client ~slot ~delta:false;
                      t.repairs <- t.repairs + 1
                    with Client.Stuck _ | Client.Data_loss _ ->
                      t.errors <- t.errors + 1)
                  (Shard_cluster.used_slots t.sc ~group:g);
                (* Sweep the group once more for anything recovery
                   could not see per-slot (stale unfinished writes
                   flagged by probes). *)
                Budget.take ~urgent:true t.budget slot_cost;
                try Volume.monitor_once t.volume ~group:g
                with Client.Stuck _ | Client.Data_loss _ ->
                  t.errors <- t.errors + 1)
              groups;
            if groups <> [] then
              t.repaired <- (node, Shard_cluster.now t.sc) :: t.repaired)
      end)

(* Lazy path: the deferred node came back with its state.  Catch every
   affected stripe up in place under the ordinary (non-urgent) budget:
   a lock-free health check first, then recovery — which resolves a
   merely epoch-stale member by delta repair — only where needed. *)
let catch_up t node ~groups =
  let cfg = Shard_cluster.config t.sc in
  let n = cfg.Config.n in
  let slot_cost = float_of_int (n + 1) in
  (* Let the clients' circuit breakers half-open before probing: right
     after the revive they still fast-fail the member for up to one
     quarantine period, which would read as "unreachable" and force
     full rebuilds where a delta catch-up suffices. *)
  Fiber.sleep (2. *. cfg.Config.health.Config.quarantine);
  List.iter (wait_claim t) groups;
  Fun.protect
    ~finally:(fun () -> List.iter (Shard_cluster.release_group t.sc) groups)
    (fun () ->
      List.iter
        (fun g ->
          let client = Volume.group_client t.volume g in
          List.iter
            (fun slot ->
              Budget.take ~urgent:false t.budget slot_cost;
              try
                let h = Client.verify_slot client ~slot in
                if not h.Client.sh_healthy then begin
                  Client.recover_slot client ~slot;
                  t.repairs <- t.repairs + 1
                end
              with Client.Stuck _ | Client.Data_loss _ ->
                t.errors <- t.errors + 1)
            (Shard_cluster.used_slots t.sc ~group:g);
          Budget.take ~urgent:false t.budget slot_cost;
          try Volume.monitor_once t.volume ~group:g
          with Client.Stuck _ | Client.Data_loss _ -> t.errors <- t.errors + 1)
        groups;
      if groups <> [] then
        t.repaired <- (node, Shard_cluster.now t.sc) :: t.repaired)

let handle t node =
  if Shard_cluster.node_alive t.sc node then
    (* Accrual false positive: the node is reachable but lossy enough to
       drive some client's suspicion over the Down threshold.  The
       circuit breaker already shields the fast path; moving data would
       be churn.  If the node goes on misbehaving, the detector's
       Probation -> Down round trip re-enqueues it here. *)
    t.false_alarms <- t.false_alarms + 1
  else begin
    let cfg = Shard_cluster.config t.sc in
    let floor = Config.effective_floor cfg in
    let affected = Placement.groups_on (Shard_cluster.placement t.sc) node in
    (* Classify by live redundancy: a group still at/above the repair
       floor loses nothing by waiting out a transient outage, so it
       parks on a grace timer instead of moving data.  With the default
       floor (= n) every group with a dead member classifies urgent,
       reproducing the eager seed behaviour exactly. *)
    let urgent, deferrable =
      List.partition (fun g -> live_members t g < floor) affected
    in
    if urgent <> [] then fail_over_groups t node ~only:urgent;
    if deferrable <> [] && not (Hashtbl.mem t.deferred node) then begin
      t.deferrals <- t.deferrals + 1;
      Hashtbl.replace t.deferred node
        {
          df_deadline =
            Shard_cluster.now t.sc +. cfg.Config.repair.Config.repair_grace;
          df_groups = deferrable;
        }
    end
  end

(* One pass over the grace timers: a node that returned resolves by
   in-place catch-up; an expired timer falls through to the urgent
   failover path; anything else keeps waiting.  Re-check liveness per
   entry — both branches mutate it. *)
let check_deferred t =
  let due =
    Hashtbl.fold
      (fun node d acc ->
        if Shard_cluster.node_alive t.sc node then `Back (node, d) :: acc
        else if Shard_cluster.now t.sc >= d.df_deadline then
          `Expired (node, d) :: acc
        else acc)
      t.deferred []
  in
  List.iter
    (fun verdict ->
      match verdict with
      | `Back (node, d) ->
        Hashtbl.remove t.deferred node;
        t.catchups <- t.catchups + 1;
        catch_up t node ~groups:d.df_groups
      | `Expired (node, d) ->
        Hashtbl.remove t.deferred node;
        (* Only fail over groups that still lack the member: the node
           may have blinked back and died again, or a rebalance may have
           moved members meanwhile. *)
        if not (Shard_cluster.node_alive t.sc node) then
          fail_over_groups t node ~only:d.df_groups)
    due

let run t =
  while (not t.stopped) && Shard_cluster.now t.sc < t.until do
    check_deferred t;
    if Queue.is_empty t.pending then Fiber.sleep t.poll
    else begin
      let node = Queue.pop t.pending in
      (* Un-mark before handling: a fresh Down transition arriving while
         we repair (Probation re-trip) must be able to re-enqueue. *)
      Hashtbl.remove t.queued node;
      handle t node
    end
  done

let start sc ~id ?budget ?(poll = 0.5e-3) ~until () =
  if poll <= 0. then invalid_arg "Supervisor.start: need poll > 0";
  let n = (Shard_cluster.config sc).Config.n in
  let budget =
    match budget with
    | Some b -> b
    | None ->
      Budget.create ~rate:2000.
        ~cap:(2. *. float_of_int (n + 1))
        ~now:(fun () -> Shard_cluster.now sc)
  in
  let t =
    {
      sc;
      volume = Volume.create sc ~id;
      budget;
      poll;
      until;
      pending = Queue.create ();
      queued = Hashtbl.create 8;
      deferred = Hashtbl.create 4;
      stopped = false;
      failovers = 0;
      repairs = 0;
      errors = 0;
      false_alarms = 0;
      deferrals = 0;
      catchups = 0;
      detections = [];
      repaired = [];
    }
  in
  Shard_cluster.on_pool_health sc (fun ~now ~node ~state ->
      if state = Health.Down && not (Hashtbl.mem t.queued node) then begin
        Hashtbl.replace t.queued node ();
        Queue.push node t.pending;
        t.detections <- (node, now) :: t.detections
      end);
  Shard_cluster.spawn sc (fun () -> run t);
  t
