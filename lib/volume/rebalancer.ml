(* Background rebalancer: drains the shard cluster's pending-move queue
   (produced by add_node/drain_node placement diffs) and performs each
   member migration live — reassign the placement, remap the directory
   entry to a fresh generation (INIT slots on the new host), then
   rebuild every used stripe through the Fig 6 recovery path.  The
   source node keeps serving throughout (a drain is not a crash), so
   reads never lose redundancy mid-migration.

   Moves are validated against the live placement before applying: a
   queued move can go stale when a failover or a newer plan already
   re-homed the member, or when its destination died or started
   draining after the plan was cut.  Stale moves are dropped (counted
   in [skipped]); a later {!Shard_cluster.plan_rebalance} re-derives
   whatever still needs moving.

   Coordination with the supervisor's targeted repair is via the shard
   cluster's per-group claims.  The rebalancer only ever [try_claim]s —
   on contention it requeues the move and sleeps, never blocking on a
   claim.  It may block in a {e non-urgent} {!Budget.take} while holding
   a claim; that is safe because the supervisor acquires all its claims
   {e before} opening the budget's urgent section, so a claim-holder
   parked on the budget always drains once the urgent repair ends. *)

type t = {
  sc : Shard_cluster.t;
  volume : Volume.t;
  budget : Budget.t;
  poll : float;
  replan : float; (* 0. disables periodic re-planning *)
  until : float;
  mutable next_replan : float;
  mutable stopped : bool;
  mutable moves : int;
  mutable blocks_moved : int;
  mutable skipped : int;
  mutable errors : int;
}

let moves t = t.moves
let blocks_moved t = t.blocks_moved
let skipped t = t.skipped
let errors t = t.errors
let stop t = t.stopped <- true

(* A queued move is applicable iff the member is still where the plan
   saw it and the destination is a live, undrained node not already
   serving the group. *)
let valid t (mv : Placement.move) =
  let pl = Shard_cluster.placement t.sc in
  let topo = Placement.topology pl in
  mv.Placement.mv_dst < Placement.pool pl
  && Placement.member pl ~group:mv.mv_group ~index:mv.mv_index = mv.mv_src
  && Shard_cluster.node_alive t.sc mv.mv_dst
  && Topology.weight topo mv.mv_dst > 0.
  && not
       (Array.exists
          (fun q -> q = mv.mv_dst)
          (Placement.group_nodes pl mv.mv_group))

let apply t (mv : Placement.move) =
  let g = mv.Placement.mv_group in
  if not (valid t mv) then t.skipped <- t.skipped + 1
  else if not (Shard_cluster.try_claim_group t.sc g) then begin
    (* Supervisor is repairing this group: back off and retry.  The
       move is re-validated on the next pass, so a failover that lands
       meanwhile just turns it into a skip. *)
    Shard_cluster.requeue_move t.sc mv;
    Fiber.sleep t.poll
  end
  else
    Fun.protect
      ~finally:(fun () -> Shard_cluster.release_group t.sc g)
      (fun () ->
        let n = (Shard_cluster.config t.sc).Config.n in
        let slot_cost = float_of_int (n + 1) in
        let pl = Shard_cluster.placement t.sc in
        Placement.reassign pl ~group:g ~index:mv.mv_index ~node:mv.mv_dst;
        ignore (Directory.remap (Shard_cluster.group_directory t.sc g)
                  mv.mv_index);
        t.moves <- t.moves + 1;
        let client = Volume.group_client t.volume g in
        List.iter
          (fun slot ->
            Budget.take t.budget slot_cost;
            try
              (* The move's destination is a fresh INIT member: a delta
                 probe can never succeed there, so go straight to the
                 Fig 6 rebuild and save the probe round-trip. *)
              Client.recover_slot client ~slot ~delta:false;
              t.blocks_moved <- t.blocks_moved + 1
            with Client.Stuck _ | Client.Data_loss _ ->
              t.errors <- t.errors + 1)
          (Shard_cluster.used_slots t.sc ~group:g))

let run t =
  while (not t.stopped) && Shard_cluster.now t.sc < t.until do
    match Shard_cluster.take_move t.sc with
    | Some mv -> apply t mv
    | None ->
      if t.replan > 0. && Shard_cluster.now t.sc >= t.next_replan then begin
        t.next_replan <- Shard_cluster.now t.sc +. t.replan;
        if Shard_cluster.plan_rebalance t.sc = [] then Fiber.sleep t.poll
      end
      else Fiber.sleep t.poll
  done

let start sc ~id ?budget ?(poll = 0.5e-3) ?(replan = 0.) ~until () =
  if poll <= 0. then invalid_arg "Rebalancer.start: need poll > 0";
  if replan < 0. then invalid_arg "Rebalancer.start: need replan >= 0";
  let n = (Shard_cluster.config sc).Config.n in
  let budget =
    match budget with
    | Some b -> b
    | None ->
      Budget.create ~rate:2000.
        ~cap:(2. *. float_of_int (n + 1))
        ~now:(fun () -> Shard_cluster.now sc)
  in
  let t =
    {
      sc;
      volume = Volume.create sc ~id;
      budget;
      poll;
      replan;
      until;
      next_replan = Shard_cluster.now sc +. replan;
      stopped = false;
      moves = 0;
      blocks_moved = 0;
      skipped = 0;
      errors = 0;
    }
  in
  Shard_cluster.spawn sc (fun () -> run t);
  t
