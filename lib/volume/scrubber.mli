(** Budgeted background scrub over a sharded volume.

    Sweeps every used stripe of every group through
    {!Scrub.scrub_slot} — node-side digest self-checks, the
    cross-member decode check, and ordinary Fig 6 recovery for anything
    flagged.  Verified reads bound the exposure of {e hot} blocks; the
    scrubber bounds the {b detection lag} of at-rest faults on cold
    blocks by its sweep period, provided the shared {!Budget} sustains
    [(2n + 1) x stripes / period] tokens per second.

    Plays nice with the other background actors: it draws non-urgent
    tokens (supervisor repair preempts at the bucket) and skips groups
    currently claimed for repair or migration, catching them on the
    next pass. *)

type t

val start :
  Shard_cluster.t ->
  id:int ->
  ?budget:Budget.t ->
  ?period:float ->
  ?poll:float ->
  until:float ->
  unit ->
  t
(** Spawn the scrub fiber.  [id] is the client id its RPCs run under;
    [budget] defaults to a private 2000 tokens/s bucket; [period]
    (default 50 ms simulated) is the target interval between sweep
    starts — a faster sweep idles out the remainder.
    @raise Invalid_argument unless [period] and [poll] are positive. *)

val stop : t -> unit

val passes : t -> int
(** Completed full sweeps. *)

val report : t -> Scrub.report
(** Accumulated scrub outcome across all sweeps so far. *)

val skipped_claims : t -> int
(** Group visits skipped because repair/rebalance held the claim. *)

val errors : t -> int
(** Stripes whose repair raised [Stuck]/[Data_loss]. *)
