(* Background maintenance for a sharded volume: one scheduler fiber
   round-robining over the groups, running the Sec 3.10 monitor pass
   (probe sweep + recovery of anything flagged, Fig 6) and a two-phase
   GC round (Fig 7) on each visit — under a token-bucket ops budget so
   background repair cannot starve foreground traffic.

   Budget model: every storage-node RPC the maintenance pass issues
   costs one token; a group visit is priced up front ([n] probes plus
   one GC round), the bucket refills at [ops_per_sec], and the fiber
   sleeps whenever the bucket runs dry.  The bucket is a {!Budget} that
   the self-healing {!Supervisor} can share — its urgent repairs are
   served first but still priced here.  Deterministic: all pacing
   derives from the simulated clock.

   Backoff: a visit that trips a retry limit (Stuck/Data_loss — e.g. a
   pool node down longer than the recovery budget) is absorbed and the
   group put on a capped exponential backoff: it is skipped by the
   round-robin until its penalty expires, doubling per consecutive
   failure up to [backoff_max].  Without this, a group whose outage
   outlasts every recovery budget would eat the entire ops budget in
   futile retries, starving the healthy groups' sweeps.

   The fiber terminates at [until] (or when {!stop} is called) — a
   discrete-event simulation only ends when every fiber does. *)

type t = {
  volume : Volume.t;
  budget : Budget.t;
  until : float;
  backoff_base : float;
  backoff_max : float;
  now : unit -> float;
  fail_streak : int array; (* consecutive failed visits, per group *)
  next_ok : float array; (* earliest next visit, per group *)
  mutable stopped : bool;
  mutable passes : int; (* completed group visits *)
  mutable gc_rounds : int;
  mutable errors : int; (* Stuck / Data_loss absorbed, retried later *)
  mutable backoffs : int; (* penalties applied (consecutive failures) *)
  mutable deferred : int; (* scheduler rounds with every group penalized *)
}

let passes t = t.passes
let gc_rounds t = t.gc_rounds
let errors t = t.errors
let backoffs t = t.backoffs
let deferred t = t.deferred
let budget t = t.budget
let stop t = t.stopped <- true

let recoveries t =
  let sum = ref 0 in
  for g = 0 to Volume.groups t.volume - 1 do
    sum := !sum + Client.recoveries_run (Volume.group_client t.volume g)
  done;
  !sum

(* Capped exponential penalty: base * 2^(streak-1), applied on every
   consecutive failure.  Exposed (with [record_success]/[eligible_at])
   so the backoff policy is unit-testable without driving a cluster. *)
let record_failure t g =
  t.errors <- t.errors + 1;
  t.fail_streak.(g) <- t.fail_streak.(g) + 1;
  let penalty =
    min t.backoff_max
      (t.backoff_base *. (2. ** float_of_int (t.fail_streak.(g) - 1)))
  in
  t.next_ok.(g) <- t.now () +. penalty;
  t.backoffs <- t.backoffs + 1

let record_success t g =
  t.fail_streak.(g) <- 0;
  t.next_ok.(g) <- 0.

let eligible_at t g = t.next_ok.(g)

let run t =
  let sc = Volume.shard_cluster (t.volume : Volume.t) in
  let n = (Shard_cluster.config sc).Config.n in
  let visit_cost = float_of_int (n + 1) in
  let groups = Volume.groups t.volume in
  let g = ref 0 in
  (* Next eligible group at or after !g in round-robin order, or None
     when every group is inside its backoff window. *)
  let next_eligible () =
    let now = t.now () in
    let rec scan i remaining =
      if remaining = 0 then None
      else if t.next_ok.(i) <= now then Some i
      else scan ((i + 1) mod groups) (remaining - 1)
    in
    scan !g groups
  in
  while (not t.stopped) && t.now () < t.until do
    match next_eligible () with
    | None ->
      (* Everyone is backing off: wait out the soonest penalty instead
         of burning budget on visits we know will be skipped. *)
      t.deferred <- t.deferred + 1;
      let soonest = Array.fold_left min infinity t.next_ok in
      let pause = max (1. /. Budget.rate t.budget) (soonest -. t.now ()) in
      Fiber.sleep (min pause (max 0. (t.until -. t.now ())))
    | Some pick ->
      g := pick;
      Budget.take t.budget visit_cost;
      if (not t.stopped) && t.now () < t.until then begin
        (* A pass that trips a retry limit (e.g. a pool node is down for
           longer than the recovery budget) is abandoned and the group
           revisited after its backoff — maintenance must outlive any
           single outage. *)
        (try
           Volume.monitor_once t.volume ~group:!g;
           Volume.collect_garbage t.volume ~group:!g;
           t.gc_rounds <- t.gc_rounds + 1;
           record_success t !g
         with Client.Stuck _ | Client.Data_loss _ -> record_failure t !g);
        t.passes <- t.passes + 1;
        g := (!g + 1) mod groups
      end
  done

let start sc ~id ?(ops_per_sec = 2000.) ?burst ?budget ?(backoff = 0.02)
    ?(backoff_max = 0.32) ~until () =
  if backoff <= 0. then invalid_arg "Maintenance.start: need backoff > 0";
  if backoff_max < backoff then
    invalid_arg "Maintenance.start: need backoff_max >= backoff";
  let volume = Volume.create sc ~id in
  let n = (Shard_cluster.config sc).Config.n in
  let budget =
    match budget with
    | Some b -> b
    | None ->
      let cap =
        match burst with Some b -> b | None -> 2. *. float_of_int (n + 1)
      in
      Budget.create ~rate:ops_per_sec ~cap ~now:(fun () ->
          Shard_cluster.now sc)
  in
  let groups = Shard_cluster.groups sc in
  let t =
    {
      volume;
      budget;
      until;
      backoff_base = backoff;
      backoff_max;
      now = (fun () -> Shard_cluster.now sc);
      fail_streak = Array.make groups 0;
      next_ok = Array.make groups 0.;
      stopped = false;
      passes = 0;
      gc_rounds = 0;
      errors = 0;
      backoffs = 0;
      deferred = 0;
    }
  in
  Shard_cluster.spawn sc (fun () -> run t);
  t
