(* Background maintenance for a sharded volume: one scheduler fiber
   round-robining over the groups, running the Sec 3.10 monitor pass
   (probe sweep + recovery of anything flagged, Fig 6) and a two-phase
   GC round (Fig 7) on each visit — under a token-bucket ops budget so
   background repair cannot starve foreground traffic.

   Budget model: every storage-node RPC the maintenance pass issues
   costs one token; a group visit is priced up front ([n] probes plus
   one GC round), the bucket refills at [ops_per_sec], and the fiber
   sleeps whenever the bucket runs dry.  Deterministic: all pacing
   derives from the simulated clock.

   The fiber terminates at [until] (or when {!stop} is called) — a
   discrete-event simulation only ends when every fiber does. *)

type t = {
  volume : Volume.t;
  ops_per_sec : float;
  burst : float;
  until : float;
  mutable stopped : bool;
  mutable passes : int; (* completed group visits *)
  mutable gc_rounds : int;
  mutable errors : int; (* Stuck / Data_loss absorbed, retried later *)
}

let passes t = t.passes
let gc_rounds t = t.gc_rounds
let errors t = t.errors
let stop t = t.stopped <- true

let recoveries t =
  let sum = ref 0 in
  for g = 0 to Volume.groups t.volume - 1 do
    sum := !sum + Client.recoveries_run (Volume.group_client t.volume g)
  done;
  !sum

let run t =
  let sc = Volume.shard_cluster t.volume in
  let n = (Shard_cluster.config sc).Config.n in
  let visit_cost = float_of_int (n + 1) in
  let tokens = ref t.burst in
  let last = ref (Shard_cluster.now sc) in
  let refill () =
    let now = Shard_cluster.now sc in
    tokens := min t.burst (!tokens +. ((now -. !last) *. t.ops_per_sec));
    last := now
  in
  let take cost =
    refill ();
    if !tokens < cost then begin
      Fiber.sleep ((cost -. !tokens) /. t.ops_per_sec);
      refill ()
    end;
    tokens := !tokens -. cost
  in
  let g = ref 0 in
  while (not t.stopped) && Shard_cluster.now sc < t.until do
    take visit_cost;
    if (not t.stopped) && Shard_cluster.now sc < t.until then begin
      (* A pass that trips a retry limit (e.g. a pool node is down for
         longer than the recovery budget) is abandoned and the group
         revisited on a later round — maintenance must outlive any
         single outage. *)
      (try
         Volume.monitor_once t.volume ~group:!g;
         Volume.collect_garbage t.volume ~group:!g;
         t.gc_rounds <- t.gc_rounds + 1
       with Client.Stuck _ | Client.Data_loss _ ->
         t.errors <- t.errors + 1);
      t.passes <- t.passes + 1;
      g := (!g + 1) mod Volume.groups t.volume
    end
  done

let start sc ~id ?(ops_per_sec = 2000.) ?burst ~until () =
  let volume = Volume.create sc ~id in
  let n = (Shard_cluster.config sc).Config.n in
  let burst =
    match burst with Some b -> b | None -> 2. *. float_of_int (n + 1)
  in
  let t =
    {
      volume;
      ops_per_sec;
      burst;
      until;
      stopped = false;
      passes = 0;
      gc_rounds = 0;
      errors = 0;
    }
  in
  Shard_cluster.spawn sc (fun () -> run t);
  t
