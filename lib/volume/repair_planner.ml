(* Degraded-aware repair-source planner (one per group client).

   Recovery consults [rank] when it orders candidate sources — the
   redundant members a delta repair could pull the add log from, or the
   k state responses a full rebuild will actually decode.  The planner
   folds in volume-level signals the protocol layer cannot see:

   - a member hosted on a {e draining} pool node (weight 0) must not
     serve repair reads — the whole point of draining is to take load
     off the node, and the member itself may be mid-migration;
   - a member whose (group, index) sits in the rebalancer's move queue
     is about to be rebuilt elsewhere — reading from it risks racing the
     migration's remap;
   - a member whose failure detector says Suspect/Probation is already
     struggling under foreground (possibly hedged) reads — repair
     traffic should go elsewhere first;
   - all else equal, consecutive rebuilds should spread across distinct
     sources instead of hammering the first healthy member, which is
     what the [note] feedback counter achieves.

   Ranks are additive penalties: 0 is a perfectly idle healthy member.
   The draining penalty dominates everything else so a draining source
   is chosen only when no alternative exists at all (restoring
   redundancy still beats refusing to repair). *)

type t = {
  pool_of : index:int -> int;
  draining : int -> bool;
  queued : index:int -> bool;
  mutable health : Health.t option; (* late-bound: client built after us *)
  recent : (int, int) Hashtbl.t; (* member index -> repair reads served *)
  mutable notes : (int * int) list; (* (slot, pos) picks, newest first *)
}

let penalty_draining = 1_000_000
let penalty_queued = 10_000
let penalty_suspect = 100
let penalty_probation = 50

let create ~pool_of ~draining ~queued () =
  {
    pool_of;
    draining;
    queued;
    health = None;
    recent = Hashtbl.create 8;
    notes = [];
  }

let set_health t h = t.health <- Some h

let rank t ~index =
  let served =
    match Hashtbl.find_opt t.recent index with Some c -> c | None -> 0
  in
  let state_penalty =
    match t.health with
    | None -> 0
    | Some h -> (
      match Health.state h ~node:index with
      | Health.Healthy -> 0
      | Health.Suspect | Health.Down -> penalty_suspect
      | Health.Probation -> penalty_probation)
  in
  (if t.draining (t.pool_of ~index) then penalty_draining else 0)
  + (if t.queued ~index then penalty_queued else 0)
  + state_penalty + served

let note t ~index ~slot ~pos =
  Hashtbl.replace t.recent index
    (1 + match Hashtbl.find_opt t.recent index with Some c -> c | None -> 0);
  t.notes <- (slot, pos) :: t.notes

let planner t ~layout : Recovery.planner =
  {
    Recovery.rank =
      (fun ~slot ~pos ->
        rank t ~index:(Layout.node_of layout ~stripe:slot ~pos));
    note =
      (fun ~slot ~pos ->
        note t ~index:(Layout.node_of layout ~stripe:slot ~pos) ~slot ~pos);
  }

let source_reads t ~index =
  match Hashtbl.find_opt t.recent index with Some c -> c | None -> 0

let picks t = List.rev t.notes
