(** Wire protocol between clients and storage nodes: the operations of
    Figs 4-7 of the paper, plus the broadcast variant of [add]
    (Sec 3.11) where the storage node performs the [alpha_ji]
    multiplication itself.

    A storage node hosts one {e slot} per stripe; every request addresses
    a slot.  Blocks travelling in requests/responses dominate message
    size; {!request_bytes} and {!response_bytes} give the payload sizes
    the simulator charges to the network. *)

(** Unique write identifier [(seq, blk, client)] — the paper's
    [⟨seq, i, p⟩].  [blk] is the stripe-relative index of the data block
    the write targets, which is what [find_consistent]'s per-origin test
    uses. *)
type tid = { seq : int; blk : int; client : int }

val tid_compare : tid -> tid -> int
val tid_to_string : tid -> string

(** Lock mode of a slot: unlocked, partial lock (adds still admitted),
    full lock, or expired (holder crashed). *)
type lmode = Unl | L0 | L1 | Exp

(** Operation mode: valid data, mid-reconstruction, or uninitialized
    garbage (after a fail-remap). *)
type opmode = Norm | Recons | Init

val lmode_to_string : lmode -> string
val opmode_to_string : opmode -> string

(** Outcome of an [add]: applied; rejected because the predecessor write
    has not been seen ([Order]); or rejected for mode/lock/epoch reasons
    ([Fail] — the paper's bottom status). *)
type add_status = Add_ok | Add_order | Add_fail

(** Outcome of [checktid] (Fig 5 lines 43-45). *)
type check_status = Ck_init | Ck_gc | Ck_nochange

(** One retained add from a storage node's per-slot delta log.  [d_dv]
    is the payload as the node applied it; [d_alpha] is the coefficient
    already folded in (the node's own coefficient for unicast adds, [1]
    for broadcast deltas), so a repairer can rescale the entry for a
    different target member.  [d_dblk] is the data block the originating
    write targeted, [d_epoch] the slot epoch the add was applied under. *)
type delta_entry = {
  d_tid : tid;
  d_dblk : int;
  d_epoch : int;
  d_alpha : int;
  d_dv : bytes;
}

type request =
  | Read
  | Read_checked
      (** Verified read: block, sealed integrity record, and current
          epoch in one atomic response, for client-side verification. *)
  | Swap of { v : bytes; ntid : tid }
  | Add of { dv : bytes; ntid : tid; otid : tid option; epoch : int }
  | Add_bcast of { dv : bytes; dblk : int; ntid : tid; otid : tid option; epoch : int }
      (** Broadcast write: [dv = v - w] unscaled; the node multiplies by
          its own coefficient for data block [dblk]. *)
  | Checktid of { ntid : tid; otid : tid }
  | Trylock of lmode
  | Setlock of lmode
  | Get_state
  | Getrecent of lmode
  | Reconstruct of { cset : int list; blk : bytes }
  | Finalize of { epoch : int }
  | Gc_old of tid list
  | Gc_recent of tid list
  | Probe of { older_than : float }
      (** Monitoring (Sec 3.10): report slots whose recentlist holds an
          entry older than [older_than] seconds (a started-but-unfinished
          write) and slots in [Init] opmode. *)
  | Get_meta
      (** Scrub probe: the node self-checks the slot's digest and
          returns only the verdict — separate-metadata verification,
          no block on the wire. *)
  | Mark_init
      (** Quarantine a member identified as corrupt/stale: demote the
          slot to [Init] so recovery rebuilds it. *)
  | Delta_probe
      (** Delta-repair eligibility probe: epoch, digest self-check,
          applied/tombstoned tids, and delta-log completeness floor,
          without moving any block bytes. *)
  | Get_delta of { since_epoch : int }
      (** Ask an up-to-date member for the logged adds a member stuck at
          [since_epoch] missed.  Served only when the node's delta log is
          complete back to [since_epoch]. *)
  | Apply_delta of {
      entries : delta_entry list;
      absorbed : tid list;
      from_epoch : int;
      to_epoch : int;
    }
      (** Catch an epoch-stale member up in place: XOR the (already
          rescaled) payloads of [entries] it has not yet applied, drop
          the list entries of [absorbed] writes (already applied here
          and folded into the base by a finalize since), then advance
          the slot from [from_epoch] to [to_epoch] and reseal its
          integrity record.  Rejected unless the slot is exactly at
          [from_epoch], unlocked, Norm, and digest-valid. *)

type state_view = {
  st_opmode : opmode;
  st_epoch : int;
      (** the slot's sealed epoch; recovery and degraded reads mask a
          [Norm] member whose epoch trails the newest polled epoch (a
          revived node that missed a finalize) as if it were [Init] *)
  st_recons_set : int list option;
  st_oldlist : tid list;
  st_recentlist : tid list; (** newest first *)
  st_block : bytes option;  (** [None] unless opmode = Norm *)
}

(** What a [Delta_probe] reports: everything a repairer needs to decide
    delta-repair eligibility and compute ship sets, without moving any
    block bytes. *)
type delta_probe = {
  dp_opmode : opmode;
  dp_epoch : int;
  dp_valid : bool;  (** slot digest verifies against its own epoch *)
  dp_recent : tid list;  (** recentlist tids: writes possibly in flight *)
  dp_old : tid list;  (** oldlist tids: completed-everywhere writes *)
  dp_tombs : tid list;  (** GC-dropped tids retained since last seal *)
  dp_tombs_overflow : bool;
      (** the tombstone cap was hit; duplicate suppression is no
          longer sound, so the slot cannot be a delta target *)
  dp_log_floor : int;
      (** earliest epoch the delta log is complete back to; a member
          stale at [e] can be served iff [dp_log_floor <= e] *)
  dp_log_bytes : int;
}

type response =
  | R_read of { block : bytes option; lmode : lmode }
  | R_read_checked of {
      block : bytes option;
      meta : Checksum.record option;
      epoch : int;
      lmode : lmode;
    }
  | R_meta of { opmode : opmode; epoch : int; self : Checksum.status option }
      (** [self] is the node's own verification verdict for the slot
          ([None] for [Init] slots, which hold no committed data). *)
  | R_swap of { block : bytes option; epoch : int; otid : tid option; lmode : lmode }
  | R_add of { status : add_status; opmode : opmode; lmode : lmode }
  | R_check of check_status
  | R_trylock of { ok : bool; oldlmode : lmode }
  | R_ack
  | R_state of state_view
  | R_recent of tid list
  | R_reconstruct of { epoch : int }
  | R_gc of { ok : bool }
  | R_probe of { stale : int list; init : int list }
  | R_delta_probe of delta_probe
  | R_delta of { entries : delta_entry list; to_epoch : int; complete : bool }
      (** [complete] iff the log covered everything since the requested
          epoch; an incomplete answer forces full reconstruction. *)
  | R_delta_applied of { ok : bool; applied : int; epoch : int }

val tid_bytes : int
(** Serialized size we charge for one tid. *)

val delta_entry_bytes : delta_entry -> int
val delta_entries_bytes : delta_entry list -> int
(** Serialized sizes we charge for delta-log entries (payload at its
    real length, control fields at fixed sizes). *)

val request_bytes : request -> int
val response_bytes : response -> int
(** Payload sizes in bytes as charged to the simulated network (blocks at
    their real length, control fields at fixed sizes). *)

val request_tag : request -> string
(** Short stable name used for per-operation message accounting. *)

val pp_tid : Format.formatter -> tid -> unit

val pp_request : Format.formatter -> request -> unit
val pp_response : Format.formatter -> response -> unit
(** Human-readable one-liners for trace events and checker diagnostics.
    Block payloads are rendered as their byte sizes, never their
    contents. *)
