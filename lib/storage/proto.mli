(** Wire protocol between clients and storage nodes: the operations of
    Figs 4-7 of the paper, plus the broadcast variant of [add]
    (Sec 3.11) where the storage node performs the [alpha_ji]
    multiplication itself.

    A storage node hosts one {e slot} per stripe; every request addresses
    a slot.  Blocks travelling in requests/responses dominate message
    size; {!request_bytes} and {!response_bytes} give the payload sizes
    the simulator charges to the network. *)

(** Unique write identifier [(seq, blk, client)] — the paper's
    [⟨seq, i, p⟩].  [blk] is the stripe-relative index of the data block
    the write targets, which is what [find_consistent]'s per-origin test
    uses. *)
type tid = { seq : int; blk : int; client : int }

val tid_compare : tid -> tid -> int
val tid_to_string : tid -> string

(** Lock mode of a slot: unlocked, partial lock (adds still admitted),
    full lock, or expired (holder crashed). *)
type lmode = Unl | L0 | L1 | Exp

(** Operation mode: valid data, mid-reconstruction, or uninitialized
    garbage (after a fail-remap). *)
type opmode = Norm | Recons | Init

val lmode_to_string : lmode -> string
val opmode_to_string : opmode -> string

(** Outcome of an [add]: applied; rejected because the predecessor write
    has not been seen ([Order]); or rejected for mode/lock/epoch reasons
    ([Fail] — the paper's bottom status). *)
type add_status = Add_ok | Add_order | Add_fail

(** Outcome of [checktid] (Fig 5 lines 43-45). *)
type check_status = Ck_init | Ck_gc | Ck_nochange

type request =
  | Read
  | Read_checked
      (** Verified read: block, sealed integrity record, and current
          epoch in one atomic response, for client-side verification. *)
  | Swap of { v : bytes; ntid : tid }
  | Add of { dv : bytes; ntid : tid; otid : tid option; epoch : int }
  | Add_bcast of { dv : bytes; dblk : int; ntid : tid; otid : tid option; epoch : int }
      (** Broadcast write: [dv = v - w] unscaled; the node multiplies by
          its own coefficient for data block [dblk]. *)
  | Checktid of { ntid : tid; otid : tid }
  | Trylock of lmode
  | Setlock of lmode
  | Get_state
  | Getrecent of lmode
  | Reconstruct of { cset : int list; blk : bytes }
  | Finalize of { epoch : int }
  | Gc_old of tid list
  | Gc_recent of tid list
  | Probe of { older_than : float }
      (** Monitoring (Sec 3.10): report slots whose recentlist holds an
          entry older than [older_than] seconds (a started-but-unfinished
          write) and slots in [Init] opmode. *)
  | Get_meta
      (** Scrub probe: the node self-checks the slot's digest and
          returns only the verdict — separate-metadata verification,
          no block on the wire. *)
  | Mark_init
      (** Quarantine a member identified as corrupt/stale: demote the
          slot to [Init] so recovery rebuilds it. *)

type state_view = {
  st_opmode : opmode;
  st_recons_set : int list option;
  st_oldlist : tid list;
  st_recentlist : tid list; (** newest first *)
  st_block : bytes option;  (** [None] unless opmode = Norm *)
}

type response =
  | R_read of { block : bytes option; lmode : lmode }
  | R_read_checked of {
      block : bytes option;
      meta : Checksum.record option;
      epoch : int;
      lmode : lmode;
    }
  | R_meta of { opmode : opmode; epoch : int; self : Checksum.status option }
      (** [self] is the node's own verification verdict for the slot
          ([None] for [Init] slots, which hold no committed data). *)
  | R_swap of { block : bytes option; epoch : int; otid : tid option; lmode : lmode }
  | R_add of { status : add_status; opmode : opmode; lmode : lmode }
  | R_check of check_status
  | R_trylock of { ok : bool; oldlmode : lmode }
  | R_ack
  | R_state of state_view
  | R_recent of tid list
  | R_reconstruct of { epoch : int }
  | R_gc of { ok : bool }
  | R_probe of { stale : int list; init : int list }

val tid_bytes : int
(** Serialized size we charge for one tid. *)

val request_bytes : request -> int
val response_bytes : response -> int
(** Payload sizes in bytes as charged to the simulated network (blocks at
    their real length, control fields at fixed sizes). *)

val request_tag : request -> string
(** Short stable name used for per-operation message accounting. *)

val pp_tid : Format.formatter -> tid -> unit

val pp_request : Format.formatter -> request -> unit
val pp_response : Format.formatter -> response -> unit
(** Human-readable one-liners for trace events and checker diagnostics.
    Block payloads are rendered as their byte sizes, never their
    contents. *)
