type entry = {
  net_node : Net.node;
  store : Storage_node.t;
  generation : int;
}

type t = {
  entries : entry array;
  factory : index:int -> generation:int -> entry;
}

let create ~n factory =
  if n <= 0 then invalid_arg "Directory.create: need n > 0";
  {
    entries = Array.init n (fun index -> factory ~index ~generation:0);
    factory;
  }

let n t = Array.length t.entries

let check t i =
  if i < 0 || i >= Array.length t.entries then
    invalid_arg "Directory: logical node index out of range"

let lookup t i =
  check t i;
  t.entries.(i)

let crash t i =
  check t i;
  Net.crash t.entries.(i).net_node

let remap t i =
  check t i;
  let next = t.entries.(i).generation + 1 in
  let entry = t.factory ~index:i ~generation:next in
  t.entries.(i) <- entry;
  entry

let crash_and_remap t i =
  crash t i;
  remap t i

let rebind t i net_node =
  check t i;
  let cur = t.entries.(i) in
  let entry = { cur with net_node; generation = cur.generation + 1 } in
  t.entries.(i) <- entry;
  entry

let generation t i =
  check t i;
  t.entries.(i).generation
