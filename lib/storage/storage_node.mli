(** The storage-node state machine — the "thin server" of the paper.

    A node hosts one {e slot} per stripe, each holding the stripe block
    this node is responsible for plus the protocol metadata of Figs 4-6:
    [opmode], [lmode] (+ lock-holder id), [epoch], [recentlist],
    [oldlist], and [recons_set].  Every remote procedure is a
    non-blocking state transition implemented by {!handle}; there is no
    server-side inter-procedure coordination, which is the paper's
    "simple storage nodes" claim (Sec 6.4).

    {b Lock expiry.}  The paper's nodes expire a lock "upon failure" of
    its holder (fail-stop failures are detectable).  Here the node
    consults a [client_failed] oracle whenever it observes a held lock,
    which realizes the same behaviour without background threads.

    {b Fail-remap.}  A node created with [init:`Garbage] starts every
    slot in [Init] opmode with arbitrary contents, modelling the fresh
    replacement node of Sec 3.5.

    {b Integrity.}  Every slot carries a sealed {!Checksum.record} —
    separate metadata digesting the current block — refreshed on every
    mutation.  With [self_check] on (the default) the node re-verifies
    the digest before serving [Read] and [Get_state]; a failing slot
    answers as if it held nothing, so the unchanged recovery machinery
    quarantines and rebuilds rotted members. *)

type t

val create :
  ?alpha_for:(slot:int -> dblk:int -> int) ->
  ?client_failed:(int -> bool) ->
  ?h:int ->
  ?self_check:bool ->
  ?on_integrity_fail:(slot:int -> Checksum.status -> unit) ->
  ?delta_log_cap:int ->
  ?tombs_cap:int ->
  now:(unit -> float) ->
  block_size:int ->
  init:[ `Zeroed | `Garbage ] ->
  unit ->
  t
(** [alpha_for] gives this node's erasure-code coefficient for data block
    [dblk] of stripe [slot]; it is required to serve broadcast adds and
    to tag delta-log entries with their folded coefficient (without it
    the node still works, but never qualifies as a delta-repair source).
    [client_failed] is the failure detector (defaults to "nobody ever
    fails").  [h] selects the GF(2^h) bulk kernel used to apply adds
    (default 8; must match the client's code).  [now] supplies the
    node-local clock used to timestamp recentlist entries.
    [on_integrity_fail] is the fault layer's observer: invoked each time
    a self-check fails while serving ([Read], [Get_state], [Get_meta]),
    so injected-fault detection times can be recorded node-side.
    [delta_log_cap] bounds the per-slot delta-repair log in bytes
    (default 64 KiB; 0 disables logging entirely) and [tombs_cap] the
    per-slot tombstone count (default 512); exceeding either only
    narrows delta-repair eligibility, never correctness.

    {b Buffer ownership.}  The node applies adds in place and avoids
    block copies on read and swap: a [Read]/[Swap] response may alias
    node-internal state, and a swapped-in payload becomes node-owned.
    Callers must treat returned blocks as immutable and must not reuse
    a [Swap] payload buffer after the call.  (Data-slot blocks are only
    ever replaced wholesale, never mutated in place, so aliased reads
    stay stable.) *)

val handle : t -> caller:int -> slot:int -> Proto.request -> Proto.response
(** Serve one remote procedure call on a slot.  [caller] identifies the
    invoking client (lock ownership, expiry). *)

val slot_count : t -> int
(** Number of slots this node has materialized. *)

val quarantine_inflight : t -> int
(** Crash-recovery rejoin hygiene: demote to [Init] every slot caught
    mid-reconstruction ([Recons]) — its bytes are a torn mix only a
    rebuild can fix.  Slots with in-flight recentlist entries keep
    their state: if the write was rolled back while the node was away,
    the rollback's recovery left this member epoch-stale (masked from
    reads and polls), and the delta path's orphan check forces a full
    rebuild for any held write its source cannot account for.  Returns
    the number of slots quarantined. *)

val overhead_bytes : t -> int
(** Protocol metadata bytes currently held beyond block contents —
    the Sec 6.5 space-overhead measurement. *)

val overhead_bytes_per_slot : t -> float
(** [overhead_bytes] averaged over materialized slots (0 if none). *)

(** {2 Integrity fault injection}

    At-rest faults below the protocol, for the fault layer and tests.
    Both honor the buffer-ownership contract: the stored block is
    pointer-replaced with a doctored copy, never mutated in place. *)

val corrupt_block : t -> slot:int -> xors:(int * char) list -> bool
(** Silent bit rot: XOR the masks into the stored block, leaving the
    integrity record untouched.  Guaranteed to really change the bytes
    (cancelling masks fall back to flipping byte 0).  [false] when the
    slot holds no committed data (non-NORM). *)

type snapshot
(** A committed block captured together with its sealed record. *)

val snapshot_slot : t -> slot:int -> snapshot option
(** Capture a NORM slot's block + metadata for a later rollback. *)

val rollback_slot : t -> slot:int -> snapshot -> bool
(** Stale-but-well-formed fault: restore a previously captured block
    {e and} its record.  The result is internally consistent, so it is
    detected only by the epoch check (when recovery finalized in
    between) or by a cross-member decode check. *)

(** Test/diagnostic accessors (read-only views). *)

val peek_block : t -> slot:int -> bytes

val peek_meta : t -> slot:int -> Checksum.record
(** The slot's current sealed integrity record. *)

val slot_status : t -> slot:int -> Checksum.status
(** Node-local verification verdict for the slot, as [Get_meta] would
    report it. *)

val peek_opmode : t -> slot:int -> Proto.opmode
val peek_lmode : t -> slot:int -> Proto.lmode
val peek_epoch : t -> slot:int -> int
val peek_recentlist : t -> slot:int -> Proto.tid list
val peek_oldlist : t -> slot:int -> Proto.tid list

val peek_dlog : t -> slot:int -> Proto.tid list
(** Tids currently retained in the slot's delta-repair log, newest
    first. *)

val peek_dlog_bytes : t -> slot:int -> int
val peek_dlog_floor : t -> slot:int -> int
(** Byte footprint and completeness floor of the slot's delta log: the
    log holds every add applied under epochs >= the floor. *)

val peek_tombs : t -> slot:int -> Proto.tid list
(** GC-dropped tids retained for delta-repair duplicate suppression
    since the slot's last seal. *)

val oldest_recent_age : t -> now:float -> float option
(** Age of the oldest recentlist entry across all slots — what the
    monitoring mechanism (Sec 3.10) inspects to detect unfinished
    writes.  [None] if all recentlists are empty. *)

val slots_in_opmode : t -> Proto.opmode -> int list
(** Slots currently in the given opmode (monitor probe for INIT). *)
