open Proto

(* recentlist/oldlist entries carry the node-local arrival time: swap uses
   the largest time to find the previous write's tid, and the monitor uses
   ages to detect stuck writes.  Lists are kept newest-first.

   Swap entries at the data node additionally remember the pre-swap block
   and the otid of the original response, so a retried swap (lost reply)
   can be answered without re-applying — this is what makes swap
   resendable under message loss.  The memory is reclaimed when the
   completed write moves to the oldlist. *)
type entry = {
  e_tid : tid;
  e_time : float;
  e_swap : (bytes * tid option) option;
}

type slot = {
  mutable block : bytes;
  mutable opmode : opmode;
  mutable lmode : lmode;
  mutable lid : int option; (* client holding the lock, if any *)
  mutable l_prev : lmode; (* mode before the current holder acquired *)
  mutable epoch : int;
  mutable recentlist : entry list;
  mutable oldlist : entry list;
  mutable recons_set : int list option;
  (* Separate integrity metadata: sealed digest of the current block,
     re-made on every mutation (swap/add/reconstruct) and re-sealed on
     finalize.  Kept apart from the block so checking is cheap and an
     at-rest flip of the block cannot also "fix" its record. *)
  mutable meta : Checksum.record;
  (* Delta-repair log: recently applied adds, newest first, each with
     the coefficient already folded into its payload, so a repairer can
     catch a briefly-absent peer up by shipping it only the adds it
     missed instead of reconstructing from k blocks.  [dlog_floor] is
     the completeness frontier: the log holds EVERY add this slot
     applied under epochs >= dlog_floor (capping the log or skipping an
     entry raises the floor past the affected epoch).  [dlog_reset]
     marks that a reconstruct replaced the block bytes, so the log no
     longer describes increments over any sealed base; the next
     finalize re-anchors the floor at the new epoch. *)
  mutable dlog : delta_entry list;
  mutable dlog_bytes : int;
  mutable dlog_floor : int;
  mutable dlog_reset : bool;
  (* Tombstones: tids gc_old dropped from the lists since the last seal.
     Their effects are folded into the block but no longer visible in
     any list, so a delta repairer needs them for duplicate suppression
     on both sides.  Cleared at finalize (the new base absorbs them);
     past [tombs_cap] the slot merely stops being delta-repairable
     until the next seal. *)
  mutable tombs : tid list;
  mutable tombs_overflow : bool;
}

type t = {
  slots : (int, slot) Hashtbl.t;
  now : unit -> float;
  client_failed : int -> bool;
  alpha_for : (slot:int -> dblk:int -> int) option;
  block_size : int;
  init : [ `Zeroed | `Garbage ];
  kernel : (module Kernel.S); (* bulk kernel for the configured field *)
  mutable garbage_seed : int;
  self_check : bool; (* verify own digest before serving reads/state *)
  on_integrity_fail : (slot:int -> Checksum.status -> unit) option;
      (* fault-layer observer: fired whenever a self-check fails while
         serving, so detection times can be recorded at the injection
         site (the node reporting a checksum error, ZFS-style) *)
  delta_log_cap : int; (* per-slot byte budget for the delta log; 0 disables *)
  tombs_cap : int; (* per-slot tombstone budget *)
}

let create ?alpha_for ?(client_failed = fun _ -> false) ?(h = 8)
    ?(self_check = true) ?on_integrity_fail ?(delta_log_cap = 64 * 1024)
    ?(tombs_cap = 512) ~now ~block_size ~init () =
  {
    slots = Hashtbl.create 64;
    now;
    client_failed;
    alpha_for;
    block_size;
    init;
    kernel = Kernel.for_h h;
    garbage_seed = 0x5eed;
    self_check;
    on_integrity_fail;
    delta_log_cap;
    tombs_cap;
  }

(* Deterministic "random" garbage for INIT slots: the paper's remapped
   node holds arbitrary bits; determinism keeps test runs reproducible. *)
let garbage_block t =
  t.garbage_seed <- (t.garbage_seed * 1103515245) + 12345;
  let st = Random.State.make [| t.garbage_seed |] in
  Bytes.init t.block_size (fun _ -> Char.chr (Random.State.int st 256))

let writer_of_tid tid =
  Checksum.pack_writer ~seq:tid.seq ~blk:tid.blk ~client:tid.client

let fresh_slot t =
  let block, opmode =
    match t.init with
    | `Zeroed -> (Bytes.make t.block_size '\000', Norm)
    | `Garbage -> (garbage_block t, Init)
  in
  {
    block;
    opmode;
    lmode = Unl;
    lid = None;
    l_prev = Unl;
    epoch = 0;
    recentlist = [];
    oldlist = [];
    recons_set = None;
    meta = Checksum.make ~epoch:0 ~writer:0L block;
    dlog = [];
    dlog_bytes = 0;
    dlog_floor = 0;
    dlog_reset = false;
    tombs = [];
    tombs_overflow = false;
  }

let slot t id =
  match Hashtbl.find_opt t.slots id with
  | Some s -> s
  | None ->
    let s = fresh_slot t in
    Hashtbl.add t.slots id s;
    s

let tids entries = List.map (fun e -> e.e_tid) entries

let mem_tid tid entries = List.exists (fun e -> tid_compare e.e_tid tid = 0) entries

let mem_plain_tid tid l = List.exists (fun x -> tid_compare x tid = 0) l

(* Split off the last (oldest — lists are newest-first) element. *)
let rec split_last = function
  | [] -> invalid_arg "Storage_node.split_last: empty"
  | [ e ] -> ([], e)
  | x :: rest ->
    let l, e = split_last rest in
    (x :: l, e)

(* Record an applied add in the slot's delta log.  [d_alpha] names the
   coefficient already folded into the logged payload: for unicast adds
   the client pre-scaled [dv] by this node's own coefficient (recovered
   from the placement oracle); broadcast adds are logged as the raw
   diff, coefficient 1, before node-side scaling.  The payload is
   copied — the client's dispatch buffers are pooled and recycled.  Any
   add the log cannot faithfully retain (no oracle, byte budget) raises
   the completeness floor past the current epoch instead. *)
let log_add t ~id s ~dv ~alpha ~ntid =
  if t.delta_log_cap <= 0 then s.dlog_floor <- max s.dlog_floor (s.epoch + 1)
  else begin
    let folded =
      if alpha <> 1 then Some 1
      else
        match t.alpha_for with
        | Some f -> Some (f ~slot:id ~dblk:ntid.blk)
        | None -> None
    in
    match folded with
    | None -> s.dlog_floor <- max s.dlog_floor (s.epoch + 1)
    | Some d_alpha ->
      let e =
        {
          d_tid = ntid;
          d_dblk = ntid.blk;
          d_epoch = s.epoch;
          d_alpha;
          d_dv = Bytes.copy dv;
        }
      in
      s.dlog <- e :: s.dlog;
      s.dlog_bytes <- s.dlog_bytes + delta_entry_bytes e;
      while s.dlog_bytes > t.delta_log_cap && s.dlog <> [] do
        let kept, oldest = split_last s.dlog in
        s.dlog <- kept;
        s.dlog_bytes <- s.dlog_bytes - delta_entry_bytes oldest;
        s.dlog_floor <- max s.dlog_floor (oldest.d_epoch + 1)
      done
  end

(* "upon failure of lid when lmode in {L0, L1} do lmode <- EXP" (Fig 6). *)
let expire_if_holder_failed t s =
  match (s.lmode, s.lid) with
  | (L0 | L1), Some holder when t.client_failed holder ->
    s.lmode <- Exp;
    s.lid <- None
  | _ -> ()

(* Node-side integrity self-check (first line of defense, ZFS-style):
   before serving a block the node re-digests it against its sealed
   record.  A failing slot answers as if it held nothing — reads return
   no block and get_state reports INIT — so the existing recovery and
   degraded-decode machinery excludes the rotted member and rebuilds it
   through Fig 6, with no new protocol states. *)
let self_status s = Checksum.verify s.meta ~epoch:s.epoch s.block

let checked_status t ~id s =
  let st = self_status s in
  (match t.on_integrity_fail with
  | Some f when st <> Checksum.Valid -> f ~slot:id st
  | _ -> ());
  st

let self_ok t ~id s =
  (not t.self_check) || checked_status t ~id s = Checksum.Valid

(* Read and swap hand out (and take in) block references without
   copying.  This is safe because data-slot blocks are never mutated in
   place — a data slot only changes by pointer replacement (swap,
   reconstruct) and adds land exclusively on redundant positions — so a
   reader's view is immutable, and a swapped-in payload is owned by the
   node from then on (the simulator serves calls synchronously, and
   writers hand over freshly built blocks). *)
let do_read t ~id s =
  if s.opmode <> Norm || s.lmode <> Unl || not (self_ok t ~id s) then
    R_read { block = None; lmode = s.lmode }
  else R_read { block = Some s.block; lmode = s.lmode }

(* Verified-read serve: block, metadata record, and current epoch in one
   atomic response.  Deliberately NO node-side check here — this is the
   end-to-end path, the *client* verifies (a node that cannot be trusted
   to store bytes cannot be trusted to check them either). *)
let do_read_checked s =
  if s.opmode <> Norm || s.lmode <> Unl then
    R_read_checked { block = None; meta = None; epoch = s.epoch; lmode = s.lmode }
  else
    R_read_checked
      { block = Some s.block; meta = Some s.meta; epoch = s.epoch; lmode = s.lmode }

(* Scrub probe: only the self-check verdict crosses the wire, never the
   block — the separate-metadata payoff (Androulaki/Cachin).  The node
   still pays the digest over the block, which [serve_cost] prices. *)
let do_get_meta t ~id s =
  let self = if s.opmode = Init then None else Some (checked_status t ~id s) in
  R_meta { opmode = s.opmode; epoch = s.epoch; self }

(* Quarantine: the caller (verified read / scrub) identified this member
   as holding bad-but-plausible state.  Demote to INIT so recovery
   rebuilds it from the surviving members; protocol lists go with it,
   exactly as if the member had been fail-remapped. *)
let do_mark_init s =
  s.opmode <- Init;
  s.recons_set <- None;
  s.recentlist <- [];
  s.oldlist <- [];
  (* Quarantined state cannot vouch for anything it logged. *)
  s.dlog <- [];
  s.dlog_bytes <- 0;
  s.dlog_reset <- true;
  s.tombs <- [];
  s.tombs_overflow <- false;
  R_ack

let do_swap t s ~v ~ntid =
  if s.opmode <> Norm || s.lmode <> Unl then
    R_swap { block = None; epoch = s.epoch; otid = None; lmode = s.lmode }
  else
    match
      List.find_opt (fun e -> tid_compare e.e_tid ntid = 0) s.recentlist
    with
    | Some { e_swap = Some (old, otid); _ } ->
      (* Retry (or duplicate delivery) of an already-applied swap.
         Re-applying would clobber any successor write, so answer from
         the remembered pre-swap value instead; the current epoch is the
         conservative one for the adds that follow. *)
      R_swap { block = Some old; epoch = s.epoch; otid; lmode = s.lmode }
    | Some { e_swap = None; _ } ->
      R_swap { block = None; epoch = s.epoch; otid = None; lmode = s.lmode }
    | None ->
      if mem_tid ntid s.oldlist then
        (* Completed and garbage-collected: the saved value is gone. *)
        R_swap { block = None; epoch = s.epoch; otid = None; lmode = s.lmode }
      else begin
        let retblk = s.block in
        s.block <- v;
        s.meta <- Checksum.make ~epoch:s.epoch ~writer:(writer_of_tid ntid) v;
        (* Previous write = recentlist entry with the largest time; the
           list is newest-first so that is the head.  The saved pre-swap
           value and the returned block share [retblk]: neither side
           mutates it (see the aliasing note above do_read). *)
        let otid =
          match s.recentlist with [] -> None | e :: _ -> Some e.e_tid
        in
        s.recentlist <-
          { e_tid = ntid; e_time = t.now (); e_swap = Some (retblk, otid) }
          :: s.recentlist;
        R_swap { block = Some retblk; epoch = s.epoch; otid; lmode = s.lmode }
      end

(* [alpha] is the coefficient this node applies to the incoming delta:
   1 for a unicast add (the client already scaled it), the node's own
   erasure-code coefficient for a broadcast add.  Scaling happens
   directly into the slot block via the fused kernel — no intermediate
   scaled buffer is ever materialized. *)
let apply_add t ~id s ~dv ~alpha ~ntid ~otid ~epoch =
  if s.opmode <> Norm || not (s.lmode = Unl || s.lmode = L0) || epoch < s.epoch
  then R_add { status = Add_fail; opmode = s.opmode; lmode = s.lmode }
  else if mem_tid ntid s.recentlist || mem_tid ntid s.oldlist then
    (* Fig 7: the recentlist doubles as a duplicate filter.  A re-applied
       add (duplicate delivery, or a client retry after a lost reply)
       must not be XORed in twice; it already took effect, so ack it. *)
    R_add { status = Add_ok; opmode = s.opmode; lmode = s.lmode }
  else
    let order_ok =
      match otid with
      | None -> true
      | Some o -> mem_tid o s.recentlist || mem_tid o s.oldlist
    in
    if not order_ok then
      R_add { status = Add_order; opmode = s.opmode; lmode = s.lmode }
    else begin
      let (module K : Kernel.S) = t.kernel in
      if alpha = 1 then K.xor_into ~dst:s.block ~src:dv
      else K.scale_xor_into alpha ~dst:s.block ~src:dv;
      log_add t ~id s ~dv ~alpha ~ntid;
      (* Checksum the post-add state: the digest covers block bytes
         only, so any order of the same adds seals the same digest. *)
      s.meta <- Checksum.make ~epoch:s.epoch ~writer:(writer_of_tid ntid) s.block;
      s.recentlist <-
        { e_tid = ntid; e_time = t.now (); e_swap = None } :: s.recentlist;
      R_add { status = Add_ok; opmode = s.opmode; lmode = s.lmode }
    end

let do_checktid s ~ntid ~otid =
  if not (mem_tid ntid s.recentlist) then R_check Ck_init
  else if not (mem_tid otid s.recentlist) then R_check Ck_gc
  else R_check Ck_nochange

let do_trylock s ~caller lm =
  match s.lmode with
  | (L0 | L1) when s.lid = Some caller ->
    (* The caller already holds the lock: a duplicate delivery or a
       retry after a lost grant.  Re-granting with the remembered
       pre-acquisition mode keeps trylock idempotent, so the holder's
       backoff path still restores the right mode. *)
    s.lmode <- lm;
    R_trylock { ok = true; oldlmode = s.l_prev }
  | L0 | L1 -> R_trylock { ok = false; oldlmode = s.lmode }
  | Unl | Exp ->
    let old = s.lmode in
    s.l_prev <- old;
    s.lmode <- lm;
    s.lid <- Some caller;
    R_trylock { ok = true; oldlmode = old }

let do_setlock s ~caller lm =
  s.lmode <- lm;
  s.lid <- (if lm = Unl || lm = Exp then None else Some caller);
  R_ack

(* Deviation from Fig 6 (documented in DESIGN.md): the paper's get_state
   returns the block only when opmode = NORM.  A recoverer taking over a
   crashed recovery (opmode = RECONS) must decode from the adopted
   recons_set, whose members may already have been reconstructed; their
   RECONS blocks are exactly the consistent values, so we return blocks
   for RECONS slots as well.  INIT slots still return no block.

   Unlike read/swap, get_state must COPY the block: redundant-slot
   blocks are mutated in place by adds, and find_consistent compares
   state snapshots taken at different times — an aliased view could
   mutate between poll and comparison. *)
let do_get_state t ~id s =
  if s.opmode <> Init && not (self_ok t ~id s) then
    (* Rotted or stale member: answer exactly like a fresh INIT slot so
       find_consistent excludes it and recovery rebuilds it. *)
    R_state
      {
        st_opmode = Init;
        st_epoch = s.epoch;
        st_recons_set = None;
        st_oldlist = [];
        st_recentlist = [];
        st_block = None;
      }
  else
    R_state
      {
        st_opmode = s.opmode;
        st_epoch = s.epoch;
        st_recons_set = s.recons_set;
        st_oldlist = tids s.oldlist;
        st_recentlist = tids s.recentlist;
        st_block = (if s.opmode = Init then None else Some (Bytes.copy s.block));
      }

let do_getrecent s ~caller lm =
  s.lmode <- lm;
  s.lid <- Some caller;
  R_recent (tids s.recentlist)

let do_reconstruct s ~cset ~blk =
  s.opmode <- Recons;
  s.recons_set <- Some cset;
  (* Delta-log survival: recovery reconstructs EVERY member, including
     the up-to-date ones whose re-encoded value is byte-identical to
     what they hold.  For those the log still describes increments over
     the (unchanged) bytes, so it survives; a member whose bytes really
     changed can no longer vouch for its log — drop it and let the
     coming finalize re-anchor the completeness floor. *)
  if not (Bytes.equal s.block blk) then begin
    s.dlog <- [];
    s.dlog_bytes <- 0;
    s.dlog_reset <- true
  end;
  s.block <- Bytes.copy blk;
  s.meta <- Checksum.make ~epoch:s.epoch ~writer:0L s.block;
  R_reconstruct { epoch = s.epoch }

let do_finalize s ~epoch =
  (* Same bytes, new epoch: carry the digest into the new epoch.  For
     members that were NOT reconstructed this is the only maintenance
     finalize needs; for reconstructed ones it follows do_reconstruct's
     fresh record. *)
  s.meta <- Checksum.reseal s.meta ~epoch;
  s.epoch <- epoch;
  s.recentlist <- [];
  s.oldlist <- [];
  s.recons_set <- None;
  if s.opmode = Recons then s.opmode <- Norm;
  s.lmode <- Unl;
  s.lid <- None;
  (* The new epoch's base absorbs everything: tombstones are moot, and a
     reconstruct-invalidated log becomes complete again FROM this epoch. *)
  if s.dlog_reset then begin
    s.dlog_floor <- max s.dlog_floor epoch;
    s.dlog_reset <- false
  end;
  s.tombs <- [];
  s.tombs_overflow <- false;
  R_ack

let do_gc_old t s tids_to_drop =
  if s.opmode <> Norm || s.lmode <> Unl then R_gc { ok = false }
  else begin
    let dropped, kept =
      List.partition
        (fun e -> List.exists (fun x -> tid_compare x e.e_tid = 0) tids_to_drop)
        s.oldlist
    in
    s.oldlist <- kept;
    (* Tombstone what just left the lists: the write's effect stays in
       the block until the next finalize, and delta repair needs the tid
       for duplicate suppression on both sides of a catch-up. *)
    List.iter
      (fun e ->
        if List.length s.tombs >= t.tombs_cap then s.tombs_overflow <- true
        else s.tombs <- e.e_tid :: s.tombs)
      dropped;
    R_gc { ok = true }
  end

let do_gc_recent s tids_to_move =
  if s.opmode <> Norm || s.lmode <> Unl then R_gc { ok = false }
  else begin
    let moved, kept =
      List.partition
        (fun e -> List.exists (fun t -> tid_compare t e.e_tid = 0) tids_to_move)
        s.recentlist
    in
    s.recentlist <- kept;
    (* The write completed everywhere: its saved pre-swap value can go. *)
    s.oldlist <- List.map (fun e -> { e with e_swap = None }) moved @ s.oldlist;
    R_gc { ok = true }
  end

(* --- Delta repair (node side) ---------------------------------------

   Three procedures let a repairer catch an epoch-stale member up
   without a k-block reconstruction: [Delta_probe] exposes the facts an
   eligibility decision needs (epoch, digest verdict, list/tombstone
   tids, log completeness floor); [Get_delta] hands out the logged adds
   since a given epoch, but only when the log provably covers them all;
   [Apply_delta] performs the catch-up on the stale member and reseals
   its integrity record at the target epoch.  All the set reasoning
   (which entries to ship, what the target already holds) lives in the
   repairer — the node stays a thin state machine. *)

let do_delta_probe t ~id s =
  R_delta_probe
    {
      dp_opmode = s.opmode;
      dp_epoch = s.epoch;
      dp_valid = s.opmode <> Init && self_ok t ~id s;
      dp_recent = tids s.recentlist;
      dp_old = tids s.oldlist;
      dp_tombs = s.tombs;
      dp_tombs_overflow = s.tombs_overflow;
      dp_log_floor = s.dlog_floor;
      dp_log_bytes = s.dlog_bytes;
    }

let do_get_delta s ~since_epoch =
  let complete =
    s.opmode = Norm && (not s.dlog_reset) && s.dlog_floor <= since_epoch
  in
  let entries =
    if complete then
      List.filter (fun (e : delta_entry) -> e.d_epoch >= since_epoch) s.dlog
    else []
  in
  R_delta { entries; to_epoch = s.epoch; complete }

let do_apply_delta t ~id s ~entries ~absorbed ~from_epoch ~to_epoch =
  if
    s.opmode <> Norm || s.lmode <> Unl
    || s.epoch <> from_epoch
    || to_epoch <= from_epoch
    || s.tombs_overflow
    || not (self_ok t ~id s)
  then R_delta_applied { ok = false; applied = 0; epoch = s.epoch }
  else begin
    let (module K : Kernel.S) = t.kernel in
    let known tid =
      mem_tid tid s.recentlist || mem_tid tid s.oldlist
      || mem_plain_tid tid s.tombs
    in
    (* Re-filter by tid on this side too: the repairer computed the ship
       set from a probe that may have raced a concurrent retry. *)
    let applied = ref 0 in
    List.iter
      (fun (e : delta_entry) ->
        if not (known e.d_tid) then begin
          K.xor_into ~dst:s.block ~src:e.d_dv;
          incr applied
        end)
      entries;
    (* Writes this member applied before crashing that a finalize since
       folded into the base: their effect is now base, not in-flight, so
       their list entries go — exactly what finalize would have done. *)
    s.recentlist <-
      List.filter (fun e -> not (mem_plain_tid e.e_tid absorbed)) s.recentlist;
    s.oldlist <-
      List.filter (fun e -> not (mem_plain_tid e.e_tid absorbed)) s.oldlist;
    s.tombs <- [];
    s.tombs_overflow <- false;
    s.epoch <- to_epoch;
    (* The cross-epoch reseal: the caught-up bytes are this member's
       value for the target epoch's base plus its leftover in-flight
       writes, sealed fresh like any other mutation. *)
    s.meta <- Checksum.make ~epoch:to_epoch ~writer:0L s.block;
    (* Conservative: claim log completeness only from the NEXT epoch —
       adds this member applied before the outage are not re-derivable
       from the shipped entries. *)
    s.dlog <- [];
    s.dlog_bytes <- 0;
    s.dlog_floor <- max s.dlog_floor (to_epoch + 1);
    s.dlog_reset <- false;
    R_delta_applied { ok = true; applied = !applied; epoch = to_epoch }
  end

(* Monitoring probe (Sec 3.10): stale = slots with a recentlist entry
   older than the threshold (a started-but-unfinished or un-GC'd write);
   init = slots holding garbage after a fail-remap. *)
let do_probe t ~older_than =
  let now = t.now () in
  let stale, init =
    Hashtbl.fold
      (fun id s (stale, init) ->
        let is_stale =
          List.exists (fun e -> now -. e.e_time > older_than) s.recentlist
        in
        let stale = if is_stale then id :: stale else stale in
        let init = if s.opmode = Init then id :: init else init in
        (stale, init))
      t.slots ([], [])
  in
  R_probe { stale = List.sort compare stale; init = List.sort compare init }

let rec handle t ~caller ~slot:slot_id req =
  match req with
  | Probe { older_than } ->
    (* Node-wide: must not materialize the addressed slot. *)
    do_probe t ~older_than
  | _ -> handle_slot t ~caller ~slot:slot_id req

and handle_slot t ~caller ~slot:slot_id req =
  let s = slot t slot_id in
  expire_if_holder_failed t s;
  match req with
  | Read -> do_read t ~id:slot_id s
  | Read_checked -> do_read_checked s
  | Get_meta -> do_get_meta t ~id:slot_id s
  | Mark_init -> do_mark_init s
  | Swap { v; ntid } -> do_swap t s ~v ~ntid
  | Add { dv; ntid; otid; epoch } ->
    apply_add t ~id:slot_id s ~dv ~alpha:1 ~ntid ~otid ~epoch
  | Add_bcast { dv; dblk; ntid; otid; epoch } ->
    let alpha =
      match t.alpha_for with
      | Some f -> f ~slot:slot_id ~dblk
      | None -> invalid_arg "Storage_node: broadcast add without alpha_for"
    in
    apply_add t ~id:slot_id s ~dv ~alpha ~ntid ~otid ~epoch
  | Checktid { ntid; otid } -> do_checktid s ~ntid ~otid
  | Trylock lm -> do_trylock s ~caller lm
  | Setlock lm -> do_setlock s ~caller lm
  | Get_state -> do_get_state t ~id:slot_id s
  | Getrecent lm -> do_getrecent s ~caller lm
  | Reconstruct { cset; blk } -> do_reconstruct s ~cset ~blk
  | Finalize { epoch } -> do_finalize s ~epoch
  | Gc_old l -> do_gc_old t s l
  | Gc_recent l -> do_gc_recent s l
  | Delta_probe -> do_delta_probe t ~id:slot_id s
  | Get_delta { since_epoch } -> do_get_delta s ~since_epoch
  | Apply_delta { entries; absorbed; from_epoch; to_epoch } ->
    do_apply_delta t ~id:slot_id s ~entries ~absorbed ~from_epoch ~to_epoch
  | Probe _ -> assert false (* dispatched in [handle] *)

let slot_count t = Hashtbl.length t.slots

(* Crash-recovery rejoin (delta-repair's state-preserving restart): a
   node that comes back with its disk intact can vouch for every slot
   whose state machine was between operations — including slots with
   in-flight recentlist entries.  If no recovery ran while the node was
   away, those writes are still in flight globally and simply resume;
   if one did run, it finalized a higher epoch at the survivors, so the
   returning member is epoch-stale and masked everywhere until repair —
   and the delta path's orphan check refuses catch-up (forcing a full
   rebuild) for any held write the source cannot account for, which is
   exactly the rolled-back case.  The one thing the node cannot vouch
   for is a reconstruction that was interrupted mid-flight: those
   slots' bytes are a torn mix, so they quarantine to INIT and rebuild. *)
let quarantine_inflight t =
  Hashtbl.fold
    (fun _ s acc ->
      if s.opmode = Recons then begin
        ignore (do_mark_init s);
        acc + 1
      end
      else acc)
    t.slots 0

(* Sec 6.5 accounting: opmode and lmode packed in 1 byte, lid 2, epoch 4,
   list lengths 2 bytes each, plus 12 bytes per retained tid and 4 for
   its timestamp; recons_set only while recovery is in flight.  An
   in-flight swap entry also pins its saved pre-swap block until the
   write completes. *)
let overhead_bytes t =
  Hashtbl.fold
    (fun _ s acc ->
      let per_entry = tid_bytes + 4 in
      let saved =
        List.fold_left
          (fun a e ->
            match e.e_swap with Some (b, _) -> a + Bytes.length b | None -> a)
          0 s.recentlist
      in
      let lists =
        per_entry * (List.length s.recentlist + List.length s.oldlist)
        + saved
      in
      let recons =
        match s.recons_set with None -> 0 | Some l -> 4 * List.length l
      in
      let repair = s.dlog_bytes + (tid_bytes * List.length s.tombs) in
      acc + 1 + 2 + 4 + 2 + 2 + lists + recons + repair + Checksum.bytes_size)
    t.slots 0

let overhead_bytes_per_slot t =
  let n = slot_count t in
  if n = 0 then 0. else float_of_int (overhead_bytes t) /. float_of_int n

(* --- Integrity fault injection (at-rest, below the protocol) --------

   Both faults honor the aliasing contract above do_read: the stored
   block is never mutated in place, only pointer-replaced with a doctored
   copy, so previously handed-out references stay stable. *)

(* Silent bit rot: XOR masks into a copy of the stored bytes, leaving
   the integrity record untouched — which is what makes it silent.
   Returns false when the slot holds no committed data (non-NORM).  If
   the masks happen to cancel out, byte 0 is flipped so an injection
   recorded by the fault layer is always a real fault. *)
let corrupt_block t ~slot:id ~xors =
  match Hashtbl.find_opt t.slots id with
  | None -> false
  | Some s ->
    if s.opmode <> Norm then false
    else begin
      let b = Bytes.copy s.block in
      List.iter
        (fun (off, mask) ->
          if off >= 0 && off < Bytes.length b then
            Bytes.set b off
              (Char.chr (Char.code (Bytes.get b off) lxor Char.code mask)))
        xors;
      if Bytes.equal b s.block && Bytes.length b > 0 then
        Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0xff));
      s.block <- b;
      true
    end

(* Stale-but-well-formed state: capture a committed block together with
   its sealed record, and later roll both back.  The restored state is
   internally consistent — digest matches, seal verifies — so it is only
   catchable by the epoch check (if recovery finalized in between) or by
   a cross-member decode check. *)
type snapshot = { sn_block : bytes; sn_meta : Checksum.record }

let snapshot_slot t ~slot:id =
  match Hashtbl.find_opt t.slots id with
  | Some s when s.opmode = Norm ->
    Some { sn_block = Bytes.copy s.block; sn_meta = s.meta }
  | _ -> None

let rollback_slot t ~slot:id snap =
  match Hashtbl.find_opt t.slots id with
  | Some s when s.opmode = Norm ->
    s.block <- Bytes.copy snap.sn_block;
    s.meta <- snap.sn_meta;
    true
  | _ -> false

let peek_block t ~slot:id = (slot t id).block
let peek_meta t ~slot:id = (slot t id).meta
let slot_status t ~slot:id = self_status (slot t id)
let peek_opmode t ~slot:id = (slot t id).opmode
let peek_lmode t ~slot:id = (slot t id).lmode
let peek_epoch t ~slot:id = (slot t id).epoch
let peek_recentlist t ~slot:id = tids (slot t id).recentlist
let peek_oldlist t ~slot:id = tids (slot t id).oldlist
let peek_dlog t ~slot:id = List.map (fun e -> e.d_tid) (slot t id).dlog
let peek_dlog_bytes t ~slot:id = (slot t id).dlog_bytes
let peek_dlog_floor t ~slot:id = (slot t id).dlog_floor
let peek_tombs t ~slot:id = (slot t id).tombs

let oldest_recent_age t ~now =
  Hashtbl.fold
    (fun _ s acc ->
      List.fold_left
        (fun acc e ->
          let age = now -. e.e_time in
          match acc with None -> Some age | Some a -> Some (Float.max a age))
        acc s.recentlist)
    t.slots None

let slots_in_opmode t mode =
  Hashtbl.fold (fun id s acc -> if s.opmode = mode then id :: acc else acc) t.slots []
  |> List.sort compare
