(** Directory service mapping logical storage-node indices to current
    physical nodes (paper Sec 3.5).

    Clients address logical nodes [0 .. n-1]; on a permanent failure the
    operator (or test harness) installs a fresh replacement whose slots
    all start in [Init] opmode with garbage contents, and subsequent
    lookups transparently return it.  The crashed physical node keeps
    refusing traffic, so in-flight calls fail cleanly. *)

type entry = {
  net_node : Net.node;
  store : Storage_node.t;
  generation : int; (** 0 for the original node, +1 per remap *)
}

type t

val create : n:int -> (index:int -> generation:int -> entry) -> t
(** [create ~n factory] builds a directory of [n] logical nodes, using
    [factory] to instantiate each (generation 0 initially). *)

val n : t -> int

val lookup : t -> int -> entry
(** Current physical node for a logical index.
    @raise Invalid_argument on out-of-range index. *)

val crash_and_remap : t -> int -> entry
(** Fail-stop the current physical node and install a fresh replacement
    (next generation); returns the replacement. *)

val crash : t -> int -> unit
(** Fail-stop the current physical node {e without} remapping — the
    "failed and no replacement yet" window.  Use {!remap} to install the
    replacement later. *)

val remap : t -> int -> entry
(** Install a replacement for a (crashed) logical node. *)

val rebind : t -> int -> Net.node -> entry
(** Re-attach the {e existing} store behind a fresh physical endpoint —
    the crash-recovery rejoin path: the node kept its disk, only its
    process/link identity changed.  Bumps the generation (so sessions
    retry calls that raced the swap) but, unlike {!remap}, preserves all
    slot state; callers should run
    {!Storage_node.quarantine_inflight} on the store before traffic
    resumes. *)

val generation : t -> int -> int
