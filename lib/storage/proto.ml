type tid = { seq : int; blk : int; client : int }

let tid_compare a b =
  let c = compare a.client b.client in
  if c <> 0 then c
  else
    let c = compare a.seq b.seq in
    if c <> 0 then c else compare a.blk b.blk

let tid_to_string t = Printf.sprintf "<%d,%d,c%d>" t.seq t.blk t.client

type lmode = Unl | L0 | L1 | Exp
type opmode = Norm | Recons | Init

let lmode_to_string = function
  | Unl -> "UNL"
  | L0 -> "L0"
  | L1 -> "L1"
  | Exp -> "EXP"

let opmode_to_string = function
  | Norm -> "NORM"
  | Recons -> "RECONS"
  | Init -> "INIT"

type add_status = Add_ok | Add_order | Add_fail
type check_status = Ck_init | Ck_gc | Ck_nochange

(* One retained (or shipped) add: the write's tid, the data position it
   changed, the epoch the logging node applied it under, and the delta
   payload with the coefficient already folded into it ([d_alpha] = the
   logging node's own coefficient for unicast adds, 1 for broadcast adds
   whose raw diff was logged before node-side scaling).  A repairer
   rescales [d_dv] by [target_alpha / d_alpha] before shipping. *)
type delta_entry = {
  d_tid : tid;
  d_dblk : int;
  d_epoch : int;
  d_alpha : int;
  d_dv : bytes;
}

type request =
  | Read
  | Read_checked
  | Swap of { v : bytes; ntid : tid }
  | Add of { dv : bytes; ntid : tid; otid : tid option; epoch : int }
  | Add_bcast of { dv : bytes; dblk : int; ntid : tid; otid : tid option; epoch : int }
  | Checktid of { ntid : tid; otid : tid }
  | Trylock of lmode
  | Setlock of lmode
  | Get_state
  | Getrecent of lmode
  | Reconstruct of { cset : int list; blk : bytes }
  | Finalize of { epoch : int }
  | Gc_old of tid list
  | Gc_recent of tid list
  | Probe of { older_than : float }
  | Get_meta
  | Mark_init
  | Delta_probe
  | Get_delta of { since_epoch : int }
  | Apply_delta of {
      entries : delta_entry list;
      absorbed : tid list;
          (* writes whose effect the target already applied and which
             some finalize since folded into the base: their list
             entries must be dropped, not their payloads re-added *)
      from_epoch : int;
      to_epoch : int;
    }

type state_view = {
  st_opmode : opmode;
  st_epoch : int;
  st_recons_set : int list option;
  st_oldlist : tid list;
  st_recentlist : tid list;
  st_block : bytes option;
}

type delta_probe = {
  dp_opmode : opmode;
  dp_epoch : int;
  dp_valid : bool; (* digest-valid at the slot's own sealed epoch *)
  dp_recent : tid list; (* recentlist: writes possibly in flight *)
  dp_old : tid list; (* oldlist: completed-everywhere writes *)
  dp_tombs : tid list; (* gc-dropped tids retained since last seal *)
  dp_tombs_overflow : bool;
  dp_log_floor : int; (* epochs >= floor fully covered by the log *)
  dp_log_bytes : int;
}

type response =
  | R_read of { block : bytes option; lmode : lmode }
  | R_read_checked of {
      block : bytes option;
      meta : Checksum.record option;
      epoch : int;
      lmode : lmode;
    }
  | R_meta of { opmode : opmode; epoch : int; self : Checksum.status option }
  | R_swap of { block : bytes option; epoch : int; otid : tid option; lmode : lmode }
  | R_add of { status : add_status; opmode : opmode; lmode : lmode }
  | R_check of check_status
  | R_trylock of { ok : bool; oldlmode : lmode }
  | R_ack
  | R_state of state_view
  | R_recent of tid list
  | R_reconstruct of { epoch : int }
  | R_gc of { ok : bool }
  | R_probe of { stale : int list; init : int list }
  | R_delta_probe of delta_probe
  | R_delta of { entries : delta_entry list; to_epoch : int; complete : bool }
  | R_delta_applied of { ok : bool; applied : int; epoch : int }

(* Wire-size accounting.  tid = three 32-bit ints; modes and statuses a
   byte each; epochs 4 bytes; blocks at their actual length. *)
let tid_bytes = 12
let int_bytes = 4
let mode_bytes = 1
let meta_bytes = Checksum.bytes_size

let opt_bytes size = function None -> 1 | Some _ -> 1 + size
let block_bytes b = Bytes.length b
let list_bytes size l = 4 + (size * List.length l)

let delta_entry_bytes e =
  tid_bytes + int_bytes + int_bytes + int_bytes + block_bytes e.d_dv

let delta_entries_bytes l =
  List.fold_left (fun a e -> a + delta_entry_bytes e) 4 l

let request_bytes = function
  | Read | Read_checked | Get_meta | Mark_init -> 1
  | Swap { v; _ } -> 1 + block_bytes v + tid_bytes
  | Add { dv; otid; _ } ->
    1 + block_bytes dv + tid_bytes + opt_bytes tid_bytes otid + int_bytes
  | Add_bcast { dv; otid; _ } ->
    1 + block_bytes dv + int_bytes + tid_bytes + opt_bytes tid_bytes otid
    + int_bytes
  | Checktid _ -> 1 + (2 * tid_bytes)
  | Trylock _ | Setlock _ -> 1 + mode_bytes
  | Get_state -> 1
  | Getrecent _ -> 1 + mode_bytes
  | Reconstruct { cset; blk } -> 1 + list_bytes int_bytes cset + block_bytes blk
  | Finalize _ -> 1 + int_bytes
  | Gc_old tids | Gc_recent tids -> 1 + list_bytes tid_bytes tids
  | Probe _ -> 1 + int_bytes
  | Delta_probe -> 1
  | Get_delta _ -> 1 + int_bytes
  | Apply_delta { entries; absorbed; _ } ->
    1 + delta_entries_bytes entries + list_bytes tid_bytes absorbed
    + (2 * int_bytes)

let response_bytes = function
  | R_read { block; _ } -> 1 + opt_bytes 0 block
                           + (match block with Some b -> block_bytes b | None -> 0)
                           + mode_bytes
  | R_read_checked { block; meta; _ } ->
    1
    + (match block with Some b -> 1 + block_bytes b | None -> 1)
    + opt_bytes meta_bytes meta + int_bytes + mode_bytes
  | R_meta { self; _ } -> 1 + mode_bytes + int_bytes + opt_bytes mode_bytes self
  | R_swap { block; otid; _ } ->
    1
    + (match block with Some b -> 1 + block_bytes b | None -> 1)
    + int_bytes + opt_bytes tid_bytes otid + mode_bytes
  | R_add _ -> 1 + (3 * mode_bytes)
  | R_check _ -> 1 + mode_bytes
  | R_trylock _ -> 1 + (2 * mode_bytes)
  | R_ack -> 1
  | R_state { st_recons_set; st_oldlist; st_recentlist; st_block; _ } ->
    1 + mode_bytes + int_bytes
    + (match st_recons_set with Some s -> 1 + list_bytes int_bytes s | None -> 1)
    + list_bytes tid_bytes st_oldlist
    + list_bytes tid_bytes st_recentlist
    + (match st_block with Some b -> 1 + block_bytes b | None -> 1)
  | R_recent tids -> 1 + list_bytes tid_bytes tids
  | R_reconstruct _ -> 1 + int_bytes
  | R_gc _ -> 1 + mode_bytes
  | R_probe { stale; init } ->
    1 + list_bytes int_bytes stale + list_bytes int_bytes init
  | R_delta_probe { dp_recent; dp_old; dp_tombs; _ } ->
    1 + mode_bytes + int_bytes + 1
    + list_bytes tid_bytes dp_recent
    + list_bytes tid_bytes dp_old
    + list_bytes tid_bytes dp_tombs
    + 1 + int_bytes + int_bytes
  | R_delta { entries; _ } -> 1 + delta_entries_bytes entries + int_bytes + 1
  | R_delta_applied _ -> 1 + 1 + int_bytes + int_bytes

(* Human-readable forms for trace events and checker diagnostics.
   Blocks are rendered as their sizes — payload bytes are noise in a
   trace and can be megabytes. *)
let pp_tid ppf t = Format.fprintf ppf "<%d,%d,c%d>" t.seq t.blk t.client

let pp_opt_tid ppf = function
  | None -> Format.pp_print_string ppf "-"
  | Some t -> pp_tid ppf t

let pp_tid_list ppf tids =
  Format.fprintf ppf "[%a]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ";")
       pp_tid)
    tids

let pp_request ppf = function
  | Read -> Format.pp_print_string ppf "read"
  | Read_checked -> Format.pp_print_string ppf "read_checked"
  | Get_meta -> Format.pp_print_string ppf "get_meta"
  | Mark_init -> Format.pp_print_string ppf "mark_init"
  | Swap { v; ntid } ->
    Format.fprintf ppf "swap{%dB ntid=%a}" (Bytes.length v) pp_tid ntid
  | Add { dv; ntid; otid; epoch } ->
    Format.fprintf ppf "add{%dB ntid=%a otid=%a epoch=%d}" (Bytes.length dv)
      pp_tid ntid pp_opt_tid otid epoch
  | Add_bcast { dv; dblk; ntid; otid; epoch } ->
    Format.fprintf ppf "add_bcast{%dB blk=%d ntid=%a otid=%a epoch=%d}"
      (Bytes.length dv) dblk pp_tid ntid pp_opt_tid otid epoch
  | Checktid { ntid; otid } ->
    Format.fprintf ppf "checktid{ntid=%a otid=%a}" pp_tid ntid pp_tid otid
  | Trylock m -> Format.fprintf ppf "trylock{%s}" (lmode_to_string m)
  | Setlock m -> Format.fprintf ppf "setlock{%s}" (lmode_to_string m)
  | Get_state -> Format.pp_print_string ppf "get_state"
  | Getrecent m -> Format.fprintf ppf "getrecent{%s}" (lmode_to_string m)
  | Reconstruct { cset; blk } ->
    Format.fprintf ppf "reconstruct{cset=[%a] %dB}"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ";")
         Format.pp_print_int)
      cset (Bytes.length blk)
  | Finalize { epoch } -> Format.fprintf ppf "finalize{epoch=%d}" epoch
  | Gc_old tids -> Format.fprintf ppf "gc_old%a" pp_tid_list tids
  | Gc_recent tids -> Format.fprintf ppf "gc_recent%a" pp_tid_list tids
  | Probe { older_than } -> Format.fprintf ppf "probe{>%.3fs}" older_than
  | Delta_probe -> Format.pp_print_string ppf "delta_probe"
  | Get_delta { since_epoch } ->
    Format.fprintf ppf "get_delta{since=%d}" since_epoch
  | Apply_delta { entries; absorbed; from_epoch; to_epoch } ->
    Format.fprintf ppf "apply_delta{%d entries %dB absorbed=%d e%d->e%d}"
      (List.length entries)
      (delta_entries_bytes entries)
      (List.length absorbed) from_epoch to_epoch

let pp_response ppf = function
  | R_read { block; lmode } ->
    Format.fprintf ppf "r_read{%s lmode=%s}"
      (match block with Some b -> Printf.sprintf "%dB" (Bytes.length b) | None -> "-")
      (lmode_to_string lmode)
  | R_read_checked { block; meta; epoch; lmode } ->
    Format.fprintf ppf "r_read_checked{%s meta=%s epoch=%d lmode=%s}"
      (match block with Some b -> Printf.sprintf "%dB" (Bytes.length b) | None -> "-")
      (match meta with
      | Some m -> Printf.sprintf "e%d" m.Checksum.epoch
      | None -> "-")
      epoch (lmode_to_string lmode)
  | R_meta { opmode; epoch; self } ->
    Format.fprintf ppf "r_meta{%s epoch=%d self=%s}" (opmode_to_string opmode)
      epoch
      (match self with
      | Some s -> Format.asprintf "%a" Checksum.pp_status s
      | None -> "-")
  | R_swap { block; epoch; otid; lmode } ->
    Format.fprintf ppf "r_swap{%s epoch=%d otid=%a lmode=%s}"
      (match block with Some b -> Printf.sprintf "%dB" (Bytes.length b) | None -> "-")
      epoch pp_opt_tid otid (lmode_to_string lmode)
  | R_add { status; opmode; lmode } ->
    Format.fprintf ppf "r_add{%s %s %s}"
      (match status with
      | Add_ok -> "ok"
      | Add_order -> "order"
      | Add_fail -> "fail")
      (opmode_to_string opmode) (lmode_to_string lmode)
  | R_check s ->
    Format.fprintf ppf "r_check{%s}"
      (match s with Ck_init -> "init" | Ck_gc -> "gc" | Ck_nochange -> "nochange")
  | R_trylock { ok; oldlmode } ->
    Format.fprintf ppf "r_trylock{%b was=%s}" ok (lmode_to_string oldlmode)
  | R_ack -> Format.pp_print_string ppf "r_ack"
  | R_state { st_opmode; st_epoch; st_recons_set; st_oldlist; st_recentlist; st_block } ->
    Format.fprintf ppf "r_state{%s e%d%s old=%a recent=%a %s}"
      (opmode_to_string st_opmode)
      st_epoch
      (match st_recons_set with
      | Some s -> Printf.sprintf " cset=[%s]" (String.concat ";" (List.map string_of_int s))
      | None -> "")
      pp_tid_list st_oldlist pp_tid_list st_recentlist
      (match st_block with Some b -> Printf.sprintf "%dB" (Bytes.length b) | None -> "-")
  | R_recent tids -> Format.fprintf ppf "r_recent%a" pp_tid_list tids
  | R_reconstruct { epoch } -> Format.fprintf ppf "r_reconstruct{epoch=%d}" epoch
  | R_gc { ok } -> Format.fprintf ppf "r_gc{%b}" ok
  | R_probe { stale; init } ->
    let ints l = String.concat ";" (List.map string_of_int l) in
    Format.fprintf ppf "r_probe{stale=[%s] init=[%s]}" (ints stale) (ints init)
  | R_delta_probe { dp_opmode; dp_epoch; dp_valid; dp_recent; dp_old; dp_tombs;
                    dp_tombs_overflow; dp_log_floor; dp_log_bytes } ->
    Format.fprintf ppf
      "r_delta_probe{%s e%d valid=%b applied=%d tombs=%d%s floor=%d log=%dB}"
      (opmode_to_string dp_opmode)
      dp_epoch dp_valid
      (List.length dp_recent + List.length dp_old)
      (List.length dp_tombs)
      (if dp_tombs_overflow then "(ovfl)" else "")
      dp_log_floor dp_log_bytes
  | R_delta { entries; to_epoch; complete } ->
    Format.fprintf ppf "r_delta{%d entries %dB to=e%d complete=%b}"
      (List.length entries)
      (delta_entries_bytes entries)
      to_epoch complete
  | R_delta_applied { ok; applied; epoch } ->
    Format.fprintf ppf "r_delta_applied{ok=%b applied=%d epoch=%d}" ok applied
      epoch

let request_tag = function
  | Read -> "read"
  | Read_checked -> "read_checked"
  | Get_meta -> "get_meta"
  | Mark_init -> "mark_init"
  | Swap _ -> "swap"
  | Add _ -> "add"
  | Add_bcast _ -> "add_bcast"
  | Checktid _ -> "checktid"
  | Trylock _ -> "trylock"
  | Setlock _ -> "setlock"
  | Get_state -> "get_state"
  | Getrecent _ -> "getrecent"
  | Reconstruct _ -> "reconstruct"
  | Finalize _ -> "finalize"
  | Gc_old _ -> "gc_old"
  | Gc_recent _ -> "gc_recent"
  | Probe _ -> "probe"
  | Delta_probe -> "delta_probe"
  | Get_delta _ -> "get_delta"
  | Apply_delta _ -> "apply_delta"
