(* ecstore: command-line front end to the simulated erasure-coded storage
   service.

     ecstore simulate   -- run a workload on a simulated cluster
     ecstore resilience -- print tolerated failures for a code/strategy
     ecstore codes      -- inspect a Reed-Solomon code's coefficients
     ecstore crashdemo  -- scripted crash + online recovery run
     ecstore compare    -- classify a bench-profiles run against a baseline

   All knobs (k, n, strategy, clients, duration, ...) are flags; see
   `ecstore COMMAND --help`. *)

open Cmdliner

(* --- shared flags --------------------------------------------------- *)

let k_arg =
  Arg.(value & opt int 3 & info [ "k" ] ~docv:"K" ~doc:"Data blocks per stripe.")

let n_arg =
  Arg.(
    value & opt int 5
    & info [ "n" ] ~docv:"N" ~doc:"Total blocks per stripe (data + redundant).")

let strategy_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "serial" -> Ok Config.Serial
    | "parallel" -> Ok Config.Parallel
    | "bcast" | "broadcast" -> Ok Config.Bcast
    | s when String.length s > 7 && String.sub s 0 7 = "hybrid:" -> (
      match int_of_string_opt (String.sub s 7 (String.length s - 7)) with
      | Some g when g > 0 -> Ok (Config.Hybrid g)
      | _ -> Error (`Msg "hybrid group must be a positive integer"))
    | _ -> Error (`Msg "expected serial | parallel | bcast | hybrid:<g>")
  in
  let print fmt s = Format.pp_print_string fmt (Config.strategy_to_string s) in
  Arg.conv (parse, print)

let strategy_arg =
  Arg.(
    value
    & opt strategy_conv Config.Parallel
    & info [ "s"; "strategy" ] ~docv:"STRATEGY"
        ~doc:
          "Redundant-update strategy: serial, parallel, bcast, or hybrid:$(i,g).")

let t_p_arg =
  Arg.(
    value & opt int 1
    & info [ "t-p" ] ~docv:"TP" ~doc:"Tolerated client crashes (Sec 4).")

let seed_arg =
  Arg.(value & opt int 0xEC5 & info [ "seed" ] ~doc:"Simulation seed.")

let make_config ~strategy ~t_p ~k ~n =
  try Ok (Config.make ~strategy ~t_p ~block_size:1024 ~k ~n ())
  with Invalid_argument m -> Error m

(* --- simulate -------------------------------------------------------- *)

let simulate k n strategy t_p clients outstanding duration write_frac blocks
    seed crash_at =
  match make_config ~strategy ~t_p ~k ~n with
  | Error m ->
    prerr_endline m;
    1
  | Ok cfg ->
    Printf.printf
      "simulating %d-of-%d (%s, t_p=%d, t_d=%d): %d clients x %d outstanding, \
       %.2f s, %d blocks, %.0f%% writes\n%!"
      k n
      (Config.strategy_to_string strategy)
      cfg.Config.t_p cfg.Config.t_d clients outstanding duration blocks
      (100. *. write_frac);
    let cluster = Cluster.create ~seed cfg in
    let events =
      match crash_at with
      | None -> []
      | Some t ->
        [
          ( t,
            fun cl ->
              Printf.printf "t=%.3fs: crashing storage node 0\n%!" t;
              Cluster.crash_and_remap_storage cl 0 );
        ]
    in
    let result =
      Runner.run ~outstanding ~warmup:0.02 ~events ~cluster ~clients ~duration
        ~workload:(Generator.Random_mix { blocks; write_frac })
        ()
    in
    Runner.print_result "result" result;
    let stats = Cluster.stats cluster in
    Printf.printf "recoveries: %.0f; messages: %.0f; bytes: %.1f MB\n"
      (Stats.counter stats "note.recovery.done")
      (Stats.counter stats "msgs")
      (Stats.counter stats "bytes" /. 1e6);
    0

let simulate_cmd =
  let clients =
    Arg.(value & opt int 2 & info [ "c"; "clients" ] ~doc:"Client count.")
  in
  let outstanding =
    Arg.(
      value & opt int 8
      & info [ "o"; "outstanding" ] ~doc:"Outstanding requests per client.")
  in
  let duration =
    Arg.(
      value & opt float 0.2
      & info [ "d"; "duration" ] ~doc:"Simulated seconds to measure.")
  in
  let write_frac =
    Arg.(
      value & opt float 0.5
      & info [ "w"; "write-fraction" ] ~doc:"Fraction of writes in the mix.")
  in
  let blocks =
    Arg.(
      value & opt int 1024 & info [ "b"; "blocks" ] ~doc:"Logical block count.")
  in
  let crash_at =
    Arg.(
      value
      & opt (some float) None
      & info [ "crash-at" ] ~docv:"T"
          ~doc:"Crash (and remap) storage node 0 at simulated time $(docv).")
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Run a workload on a simulated cluster")
    Term.(
      const simulate $ k_arg $ n_arg $ strategy_arg $ t_p_arg $ clients
      $ outstanding $ duration $ write_frac $ blocks $ seed_arg $ crash_at)

(* --- resilience ------------------------------------------------------ *)

let resilience k n =
  if n <= k then begin
    prerr_endline "need n > k";
    1
  end
  else begin
    let p = n - k in
    Printf.printf "%d-of-%d code: p = %d redundant blocks\n\n" k n p;
    Table.print ~title:"tolerated (client, storage) crash pairs"
      ~header:[ "strategy"; "pairs"; "common-case write latency (round trips)" ]
      [
        [
          "serial";
          Resilience.pairs_to_string (Resilience.tolerated_pairs `Serial ~p);
          string_of_int (Resilience.write_latency_serial ~p);
        ];
        [
          "parallel";
          Resilience.pairs_to_string (Resilience.tolerated_pairs `Parallel ~p);
          string_of_int Resilience.write_latency_parallel;
        ];
      ];
    Printf.printf
      "Corollary 1: to tolerate (t_p, t_d) you need delta redundant nodes:\n";
    Table.print ~title:"delta (serial / parallel)"
      ~header:
        ("t_p \\ t_d" :: List.map string_of_int [ 1; 2; 3; 4 ])
      (List.map
         (fun t_p ->
           string_of_int t_p
           :: List.map
                (fun t_d ->
                  Printf.sprintf "%d / %d"
                    (Resilience.delta_serial ~t_p ~t_d)
                    (Resilience.delta_parallel ~t_p ~t_d))
                [ 1; 2; 3; 4 ])
         [ 0; 1; 2; 3 ]);
    0
  end

let resilience_cmd =
  Cmd.v
    (Cmd.info "resilience" ~doc:"Print Section 4 failure-tolerance tables")
    Term.(const resilience $ k_arg $ n_arg)

(* --- codes ----------------------------------------------------------- *)

let codes k n =
  if k < 1 || n <= k || n > 255 then begin
    prerr_endline "need 1 <= k < n <= 255";
    1
  end
  else begin
    let code = Rs_code.create ~k ~n () in
    Printf.printf
      "systematic %d-of-%d Reed-Solomon over GF(2^8) (poly 0x11d)\n\n" k n;
    Table.print ~title:"alpha coefficients (redundant block j = sum alpha_ji * data_i)"
      ~header:("j \\ i" :: List.init k string_of_int)
      (List.init (n - k) (fun r ->
           let j = k + r in
           string_of_int j
           :: List.init k (fun i -> string_of_int (Rs_code.alpha code ~j ~i))));
    0
  end

let codes_cmd =
  Cmd.v
    (Cmd.info "codes" ~doc:"Show a code's update coefficients")
    Term.(const codes $ k_arg $ n_arg)

(* --- crashdemo -------------------------------------------------------- *)

let crashdemo k n strategy t_p seed =
  match make_config ~strategy ~t_p ~k ~n with
  | Error m ->
    prerr_endline m;
    1
  | Ok cfg ->
    let cluster = Cluster.create ~seed cfg in
    Cluster.on_note cluster (fun t e ->
        Printf.printf "  t=%8.3f ms  %s\n" (1000. *. t) e);
    let volume = Cluster.make_volume cluster ~id:0 in
    Cluster.spawn cluster (fun () ->
        Printf.printf "writing %d blocks...\n" (2 * k);
        for l = 0 to (2 * k) - 1 do
          Volume.write volume l (Bytes.make 1024 (Char.chr (65 + (l mod 26))))
        done;
        Printf.printf "crashing storage node 0 and reading everything back:\n";
        Cluster.crash_and_remap_storage cluster 0;
        let ok = ref true in
        for l = 0 to (2 * k) - 1 do
          let v = Volume.read volume l in
          if Bytes.get v 0 <> Char.chr (65 + (l mod 26)) then ok := false
        done;
        Printf.printf "all blocks %s after online recovery\n"
          (if !ok then "intact" else "CORRUPTED"));
    Cluster.run cluster;
    0

let crashdemo_cmd =
  Cmd.v
    (Cmd.info "crashdemo" ~doc:"Scripted storage-crash + online-recovery demo")
    Term.(const crashdemo $ k_arg $ n_arg $ strategy_arg $ t_p_arg $ seed_arg)

(* --- scrubdemo --------------------------------------------------------- *)

let scrubdemo k n strategy t_p seed =
  match make_config ~strategy ~t_p ~k ~n with
  | Error m ->
    prerr_endline m;
    1
  | Ok cfg ->
    let cluster = Cluster.create ~seed cfg in
    let volume = Cluster.make_volume cluster ~id:0 in
    Cluster.spawn cluster (fun () ->
        for l = 0 to (4 * k) - 1 do
          Volume.write volume l (Bytes.make 1024 's')
        done;
        Printf.printf "wrote %d blocks over %d stripes\n" (4 * k)
          (List.length (Volume.used_slots volume));
        let healthy = Scrub.scrub_volume volume in
        Format.printf "scrub (healthy cluster): %a@." Scrub.pp_report healthy;
        Cluster.crash_and_remap_storage cluster 1;
        Printf.printf "crashed storage node 1\n";
        let after = Scrub.scrub_volume volume in
        Format.printf "scrub (after crash):    %a@." Scrub.pp_report after);
    Cluster.run cluster;
    0

let scrubdemo_cmd =
  Cmd.v
    (Cmd.info "scrub" ~doc:"Verify and repair every stripe of a demo volume")
    Term.(const scrubdemo $ k_arg $ n_arg $ strategy_arg $ t_p_arg $ seed_arg)

(* --- compare ----------------------------------------------------------- *)

(* Exit-code contract (the CI regression gate relies on it):
   0 = no key regressed; 1 = at least one key regressed or went missing
   from the new run; 2 = unreadable or malformed input. *)
let compare_runs old_path new_path tolerance quiet =
  let load path =
    try Ok (Report.read_file path) with
    | Sys_error m -> Error m
    | Report.Parse_error m -> Error (Printf.sprintf "%s: %s" path m)
  in
  match (load old_path, load new_path) with
  | Error m, _ | _, Error m ->
    prerr_endline m;
    2
  | Ok old_doc, Ok new_doc -> (
    match Compare.classify ~tolerance ~old_doc ~new_doc with
    | exception Report.Parse_error m ->
      prerr_endline m;
      2
    | rows ->
      if not quiet then Compare.print rows;
      let bad = Compare.regressions rows in
      let count v =
        List.length (List.filter (fun r -> r.Compare.verdict = v) rows)
      in
      Printf.printf
        "%d keys: %d improved, %d unchanged, %d regressed, %d added, %d \
         missing (tolerance %.1f%%)\n"
        (List.length rows) (count Compare.Improved) (count Compare.Unchanged)
        (count Compare.Regressed) (count Compare.Added)
        (count Compare.Missing) (100. *. tolerance);
      if bad = [] then 0
      else begin
        List.iter
          (fun r ->
            Printf.printf "FAIL %s: %s\n" r.Compare.key
              (match r.Compare.verdict with
              | Compare.Missing -> "present in baseline, missing from new run"
              | _ ->
                Printf.sprintf "%.3f -> %.3f (wants %s)" r.Compare.old_mbs
                  r.Compare.new_mbs
                  (Compare.direction_to_string r.Compare.direction)))
          bad;
        1
      end)

let compare_cmd =
  let old_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"OLD"
          ~doc:
            "Baseline bench JSON summary (bench profiles or bench volume \
             --topology).")
  in
  let new_arg =
    Arg.(
      required
      & pos 1 (some file) None
      & info [] ~docv:"NEW" ~doc:"Fresh bench JSON summary of the same shape.")
  in
  let tolerance =
    Arg.(
      value & opt float 0.02
      & info [ "tolerance" ] ~docv:"FRAC"
          ~doc:
            "Relative tolerance: a throughput key regresses when it drops \
             below old*(1-$(docv)); a cost/latency key when it rises above \
             old*(1+$(docv)).")
  in
  let quiet =
    Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"Only print the verdict.")
  in
  Cmd.v
    (Cmd.info "compare"
       ~doc:
         "Classify each profile x block-size x G key of a bench-profiles run \
          against a baseline (exit 1 on regression)")
    Term.(const compare_runs $ old_arg $ new_arg $ tolerance $ quiet)

(* --- main ------------------------------------------------------------- *)

let () =
  let doc =
    "erasure-coded distributed storage with lock-free concurrent updates \
     (reproduction of Aguilera-Janakiraman-Xu, DSN 2005)"
  in
  exit
    (Cmd.eval'
       (Cmd.group
          (Cmd.info "ecstore" ~version:"1.0.0" ~doc)
          [
            simulate_cmd;
            resilience_cmd;
            codes_cmd;
            crashdemo_cmd;
            scrubdemo_cmd;
            compare_cmd;
          ]))
