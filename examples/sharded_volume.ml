(* A sharded volume in action: 4 independent AJX stripe groups placed
   over a 10-node pool present one flat logical block address space.
   Concurrent writers stream into the volume while a pool node crashes
   and restarts; the background maintenance scheduler repairs the
   remapped members without stopping service, and a degraded read
   decodes a block from the survivors before repair completes.

   Run with:  dune exec examples/sharded_volume.exe *)

open Ecs_volume

let () =
  let cfg = Config.make ~t_p:1 ~block_size:1024 ~k:3 ~n:5 ()
  and placement = Placement.make ~groups:4 ~nodes_per_group:5 ~pool:10 () in
  let sc = Shard_cluster.create ~placement cfg in

  Printf.printf "placement of 4 groups over a 10-node pool:\n";
  for g = 0 to 3 do
    Printf.printf "  group %d -> pool nodes [%s]\n" g
      (String.concat "; "
         (Array.to_list
            (Array.map string_of_int (Placement.group_nodes placement g))))
  done;
  Printf.printf "  per-node load: [%s]  (imbalance %d)\n\n"
    (String.concat "; "
       (Array.to_list (Array.map string_of_int (Placement.loads placement))))
    (Placement.max_load_imbalance placement);

  Shard_cluster.on_note sc (fun t event ->
      if event = "recovery.done" then
        Printf.printf "  t=%6.1f ms  background repair recovered a stripe\n"
          (1000. *. t));

  (* The crashed node hosts members of several groups; pick group 0's
     first member so we know which groups degrade. *)
  let victim = Placement.member placement ~group:0 ~index:0 in
  Printf.printf "pool node %d hosts members of groups [%s]\n\n" victim
    (String.concat "; "
       (List.map string_of_int (Placement.groups_on placement victim)));

  let blocks_per_writer = 32 in
  let writers = 3 in
  let written = Array.make (writers * blocks_per_writer) false in

  (* Three concurrent writers, each its own client (own NIC, own tids),
     striping disjoint logical blocks across all four groups. *)
  for w = 0 to writers - 1 do
    let volume = Volume.create sc ~id:w in
    Shard_cluster.spawn sc (fun () ->
        for i = 0 to blocks_per_writer - 1 do
          let l = (w * blocks_per_writer) + i in
          let payload = Bytes.make 1024 (Char.chr (0x41 + (l mod 26))) in
          Volume.write volume l payload;
          written.(l) <- true
        done;
        (* Fig 7: collect this client's completed writes. *)
        for g = 0 to Volume.groups volume - 1 do
          Volume.collect_garbage volume ~group:g
        done)
  done;

  (* Crash the victim 3 ms in, restart it 6 ms later; the restart remaps
     every hosted group member to a fresh INIT generation, which the
     maintenance monitor then repairs from the survivors. *)
  Shard_cluster.schedule_outage sc ~at:3.0e-3 ~node:victim ~down_for:6.0e-3;
  Engine.schedule (Shard_cluster.engine sc) ~at:3.0e-3 (fun () ->
      Printf.printf "  t=   3.0 ms  *** pool node %d crashes ***\n" victim);
  Engine.schedule (Shard_cluster.engine sc) ~at:9.0e-3 (fun () ->
      Printf.printf "  t=   9.0 ms  *** pool node %d restarts (INIT) ***\n"
        victim);

  (* While the node is down, decode a group-0 block from any k of the
     surviving members instead of waiting for repair. *)
  let reader = Volume.create sc ~id:99 in
  Engine.schedule (Shard_cluster.engine sc) ~at:5.0e-3 (fun () ->
      Shard_cluster.spawn sc (fun () ->
          let l = 0 (* group 0, the degraded one *) in
          match Volume.read_degraded reader l with
          | Some v ->
            Printf.printf
              "  t=%6.1f ms  degraded read of block %d -> %C... (decoded from \
               %d survivors)\n"
              (1000. *. Shard_cluster.now sc)
              l (Bytes.get v 0)
              (Shard_cluster.config sc).Config.k
          | None ->
            Printf.printf "  t=%6.1f ms  degraded read: no consistent view yet\n"
              (1000. *. Shard_cluster.now sc)))
  ;

  let maint = Maintenance.start sc ~id:9999 ~ops_per_sec:5000. ~until:0.08 () in
  Shard_cluster.run sc;

  Printf.printf "\nafter the dust settles:\n";
  Printf.printf "  writes completed: %d/%d\n"
    (Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 written)
    (Array.length written);
  Printf.printf "  maintenance: %d group visits, %d recoveries, %d GC rounds\n"
    (Maintenance.passes maint)
    (Maintenance.recoveries maint)
    (Maintenance.gc_rounds maint);

  (* Every block reads back what its writer stored, through the repaired
     node included. *)
  let volume = Volume.create sc ~id:100 in
  let ok = ref true in
  Shard_cluster.spawn sc (fun () ->
      Array.iteri
        (fun l done_ ->
          if done_ then begin
            let v = Volume.read volume l in
            if Bytes.get v 0 <> Char.chr (0x41 + (l mod 26)) then ok := false
          end)
        written);
  Shard_cluster.run sc;
  Printf.printf "  read-back of all %d blocks: %s\n"
    (Array.length written)
    (if !ok then "consistent" else "CORRUPT")
