(* End-to-end integrity in action: silent at-rest faults — bit rot and
   a stale-but-well-formed rollback — are injected below the protocol,
   and every defense layer catches its share:

   - verified reads re-check each block against its sealed checksum
     record on the client, so hot data is never served rotten;
   - faults on redundant members, which no foreground read touches, are
     found by the budgeted background scrubber: a node-side digest
     self-check for bit rot, and the cross-member decode check for
     rollbacks whose record still matches their bytes;
   - everything flagged is rebuilt through the ordinary Fig 6 recovery
     path, and the detection lag of every fault is ledgered.

   Run with:  dune exec examples/integrity.exe *)

open Ecs_volume

let groups = 4

let () =
  let cfg =
    Config.make ~t_p:1 ~block_size:512 ~k:3 ~n:5 ~stale_write_age:10.
      ~integrity:{ Config.default_integrity with Config.verified_reads = true }
      ()
  in
  let placement =
    Placement.make ~seed:0x7ace ~groups ~nodes_per_group:5 ~pool:12 ()
  in
  let sc = Shard_cluster.create ~seed:0x1f ~placement cfg in

  (* Materialize four stripes per group, snapshotting one redundant
     member before its stripe is overwritten — the rollback fault will
     restore that internally-consistent-but-stale state. *)
  let snaps = Array.make groups None in
  Shard_cluster.spawn sc (fun () ->
      for g = 0 to groups - 1 do
        let client = Shard_cluster.make_group_client sc ~id:(500 + g) ~group:g in
        for s = 0 to 3 do
          for i = 0 to 2 do
            Client.write client ~slot:s ~i (Bytes.make 512 'a')
          done
        done;
        let layout = Shard_cluster.group_layout sc g in
        let r0 = Layout.node_of layout ~stripe:0 ~pos:3 in
        snaps.(g) <- Shard_cluster.snapshot_member sc ~group:g ~index:r0 ~slot:0;
        Client.write client ~slot:0 ~i:0 (Bytes.make 512 'b')
      done);
  Shard_cluster.run sc;

  let inject_at = 0.1 in
  Printf.printf
    "4 stripe groups over 12 nodes, verified reads on, background scrub \
     every 10 ms;\n\
     at t=%.0f ms each group gets 2 silent corruptions and 1 rollback, all \
     on redundant members\n\
     (no foreground read ever touches them — only the scrubber can see \
     the faults)\n\n"
    (1000. *. inject_at);
  let inject sc =
    for g = 0 to groups - 1 do
      let layout = Shard_cluster.group_layout sc g in
      let node ~slot pos = Layout.node_of layout ~stripe:slot ~pos in
      ignore
        (Shard_cluster.corrupt_member sc ~group:g ~index:(node ~slot:1 3)
           ~slot:1);
      ignore
        (Shard_cluster.corrupt_member sc ~group:g ~index:(node ~slot:2 4)
           ~slot:2);
      match snaps.(g) with
      | Some snap ->
        ignore
          (Shard_cluster.rollback_member sc ~group:g ~index:(node ~slot:0 3)
             ~slot:0 snap)
      | None -> ()
    done
  in
  let r =
    Vrunner.run ~outstanding:4
      ~events:[ (inject_at, inject) ]
      ~scrub:0.01 ~scrub_rate:4800. ~sc ~clients:4 ~duration:0.5
      ~workload:(Generator.Read_only { blocks = 48 })
      ()
  in

  Printf.printf "what the integrity layers did:\n";
  Printf.printf "  faults injected: %d   detected: %d   still latent: %d\n"
    r.Vrunner.corruptions_injected r.Vrunner.corruptions_detected
    (r.Vrunner.corruptions_injected - r.Vrunner.corruptions_detected);
  List.iteri
    (fun i lag ->
      Printf.printf "  fault %2d caught %6.1f ms after injection\n" i
        (1000. *. lag))
    r.Vrunner.detection_lag;
  let srep = r.Vrunner.scrub_report in
  Printf.printf
    "  scrub: %d sweeps, %d stripes scanned, %d repaired (%d flagged \
     members rebuilt), %d unrepaired\n\n"
    r.Vrunner.scrub_passes srep.Scrub.scanned srep.Scrub.repaired
    srep.Scrub.integrity_repaired srep.Scrub.unrepaired;
  Printf.printf "what the foreground noticed:\n";
  Printf.printf "  %d verified reads completed, none returned wrong bytes\n\n"
    r.Vrunner.run.Report.read_ops;

  (* Final sweep: every used stripe must be integrity-clean again. *)
  let v = Volume.create sc ~id:77 in
  let dirty = ref 0 and checked = ref 0 in
  Shard_cluster.spawn sc (fun () ->
      for g = 0 to Volume.groups v - 1 do
        let client = Volume.group_client v g in
        List.iter
          (fun slot ->
            incr checked;
            let rep = Client.check_integrity client ~slot in
            if
              (not rep.Client.ir_consistent)
              || rep.Client.ir_checksum <> []
              || rep.Client.ir_stale <> []
            then incr dirty)
          (Shard_cluster.used_slots sc ~group:g)
      done);
  Shard_cluster.run sc;
  let all_found =
    r.Vrunner.corruptions_detected = r.Vrunner.corruptions_injected
  in
  Printf.printf "final sweep: %d stripes checked, %d dirty -> %s\n" !checked
    !dirty
    (if !dirty = 0 && all_found then "every fault found and repaired"
     else "INTEGRITY INCOMPLETE");
  if !dirty > 0 || not all_found then exit 1
