(* Self-healing in action: a pool node fail-stops with NO scripted
   remap or restart, and the system repairs itself end to end —

   - every client's per-node health tracker escalates the silent node
     Healthy -> Suspect -> Down (accrual suspicion over adaptive,
     latency-derived deadlines), the circuit breaker quarantining it on
     the way so fast-path requests stop waiting on a corpse;
   - the supervisor confirms the verdict, fails the node's group
     members over to fresh replacements, and drives targeted Fig 6
     recovery of the affected stripes, priced against the same token
     bucket the background maintenance scheduler uses;
   - meanwhile reads whose data node is the victim answer from the
     surviving blocks (degraded decode / hedged reads) instead of
     stalling behind timeouts.

   Run with:  dune exec examples/self_healing.exe *)

open Ecs_volume

let () =
  let cfg = Config.make ~t_p:1 ~block_size:512 ~k:3 ~n:5 () in
  let placement =
    Placement.make ~seed:0x7ace ~groups:4 ~nodes_per_group:5 ~pool:12 ()
  in
  let sc = Shard_cluster.create ~seed:0x0c ~placement cfg in
  let victim = (Placement.group_nodes placement 0).(0) in
  let crash_at = 0.08 in
  Printf.printf
    "pool of 12 nodes, 4 stripe groups; node %d (hosting groups [%s]) will \
     fail-stop at t=%.0f ms, unannounced\n\n"
    victim
    (String.concat "; "
       (List.map string_of_int (Placement.groups_on placement victim)))
    (1000. *. crash_at);
  let events = [ (crash_at, fun sc -> Shard_cluster.crash_node sc victim) ] in
  let r =
    Vrunner.run ~outstanding:4 ~events ~maintenance:4000. ~supervise:true ~sc
      ~clients:4 ~duration:0.4
      ~workload:(Generator.Random_mix { blocks = 128; write_frac = 0.5 })
      ()
  in

  Printf.printf "what the supervision layer did:\n";
  List.iter
    (fun (node, t) ->
      Printf.printf "  t=%6.1f ms  node %d declared Down (%.2f ms after the \
                     crash)\n"
        (1000. *. t) node
        (1000. *. (t -. crash_at)))
    r.Vrunner.detections;
  List.iter
    (fun (node, t) ->
      Printf.printf
        "  t=%6.1f ms  node %d's stripes rebuilt on fresh hosts (MTTR %.1f \
         ms)\n"
        (1000. *. t) node
        (1000. *. (t -. crash_at)))
    r.Vrunner.repaired_at;
  Printf.printf
    "  members failed over: %d   stripes repaired: %d   false alarms: %d\n\n"
    r.Vrunner.supervisor_failovers r.Vrunner.supervisor_repairs
    r.Vrunner.supervisor_false_alarms;

  Printf.printf "what the foreground noticed:\n";
  Printf.printf "  %d reads + %d writes completed; %d writes stalled\n"
    r.Vrunner.run.Report.read_ops r.Vrunner.run.Report.write_ops
    r.Vrunner.write_stalls;
  Printf.printf
    "  hedged reads launched: %d (won %d)   breaker fast-fails: %d\n\n"
    r.Vrunner.failures.Report.hedges r.Vrunner.failures.Report.hedge_wins
    r.Vrunner.failures.Report.fast_fails;

  (* Full resiliency is back: every used stripe of every group has all
     n members answering, none of them blank. *)
  let v = Volume.create sc ~id:77 in
  let unhealthy = ref 0 and checked = ref 0 in
  Shard_cluster.spawn sc (fun () ->
      for g = 0 to Volume.groups v - 1 do
        let client = Volume.group_client v g in
        List.iter
          (fun slot ->
            incr checked;
            let h = Client.verify_slot client ~slot in
            if not h.Client.sh_healthy then incr unhealthy)
          (Shard_cluster.used_slots sc ~group:g)
      done);
  Shard_cluster.run sc;
  Printf.printf "final sweep: %d stripes checked, %d unhealthy -> %s\n"
    !checked !unhealthy
    (if !unhealthy = 0 then "full resiliency restored" else "REPAIR INCOMPLETE");
  if !unhealthy > 0 then exit 1
